/**
 * @file
 * Crash-consistency tests: the durable write protocol under torn
 * writes and bit rot, generation-store retention and manifest
 * atomicity, the async checkpoint writer's hand-off contract, signal
 * shutdown, and the fork-based kill–restart proof that a SIGKILLed
 * run resumed from the store finishes bitwise identical to an
 * uninterrupted one.
 *
 * Naming matters for CI: tests that fork (and SIGKILL) children live
 * under CrashResume.*; everything else is fork-free so the TSAN job
 * can select it (TSAN does not support fork-with-threads).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/fileutil.h"
#include "common/rng.h"
#include "common/signal_flag.h"
#include "common/threadpool.h"
#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/guard/checkpoint.h"
#include "nn/guard/ckpt_store.h"
#include "nn/guard/crash_harness.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/quant_trainer.h"
#include "obs/metrics.h"
#include "sim/faults/kill_schedule.h"

namespace cq {
namespace {

using nn::guard::AsyncCheckpointWriter;
using nn::guard::CheckpointLoadResult;
using nn::guard::CheckpointStore;
using nn::guard::CheckpointStoreConfig;
using nn::guard::CheckpointWriteResult;
using nn::guard::ManifestEntry;
using nn::guard::TrainerSnapshot;

/** A per-test directory under gtest's temp root, wiped first. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    for (const std::string &f : listDir(dir))
        std::remove((dir + "/" + f).c_str());
    ::rmdir(dir.c_str());
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

/** A small but non-trivial snapshot with a recognizable pattern. */
TrainerSnapshot
makeSnap(std::uint64_t step)
{
    TrainerSnapshot snap;
    snap.step = step;
    snap.optimizerStep = step;
    for (int t = 0; t < 2; ++t) {
        Tensor w({4, 3}), m({4, 3}), v({4, 3});
        for (std::size_t i = 0; i < w.numel(); ++i) {
            w.data()[i] = static_cast<float>(step * 100 + t * 10) +
                          0.25f * static_cast<float>(i);
            m.data()[i] = -w.data()[i];
            v.data()[i] = 0.5f * w.data()[i];
        }
        snap.masters.push_back(w);
        snap.m.push_back(m);
        snap.v.push_back(v);
    }
    return snap;
}

std::vector<char>
readAll(const std::string &path)
{
    std::vector<char> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr)
        return bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeAll(const std::string &path, const char *data, std::size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(data, 1, len, f), len);
    std::fclose(f);
}

/** XOR one bit of an existing file in place. */
void
flipBit(const std::string &path, std::size_t byte, unsigned bit)
{
    auto bytes = readAll(path);
    ASSERT_LT(byte, bytes.size());
    bytes[byte] = static_cast<char>(bytes[byte] ^ (1u << bit));
    writeAll(path, bytes.data(), bytes.size());
}

// ------------------------------------------------------ generation store

TEST(CkptStore, CommitAndLoadRoundTrip)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("ckpt_roundtrip");
    CheckpointStore store(cfg);
    ASSERT_EQ(store.commit(makeSnap(7)), CheckpointWriteResult::Ok);

    TrainerSnapshot snap;
    const auto out = store.loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.gen, 1u);
    EXPECT_TRUE(out.usedManifest);
    EXPECT_EQ(out.skippedCorrupt, 0u);
    EXPECT_EQ(snap.step, 7u);
    ASSERT_EQ(snap.masters.size(), 2u);
    EXPECT_EQ(snap.masters[0].data()[4],
              makeSnap(7).masters[0].data()[4]);
}

TEST(CkptStore, RetentionKeepsNewestKInOrder)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("ckpt_retention");
    cfg.keep = 3;
    CheckpointStore store(cfg);
    for (std::uint64_t s = 1; s <= 6; ++s)
        ASSERT_EQ(store.commit(makeSnap(s)),
                  CheckpointWriteResult::Ok);

    std::vector<ManifestEntry> entries;
    ASSERT_TRUE(store.readManifest(entries));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].gen, 4u);
    EXPECT_EQ(entries[1].gen, 5u);
    EXPECT_EQ(entries[2].gen, 6u);

    // Pruned generation files are really gone; kept ones are present.
    for (std::uint64_t g = 1; g <= 6; ++g) {
        const std::string p =
            cfg.dir + "/" + CheckpointStore::generationFileName(g);
        EXPECT_EQ(pathExists(p), g >= 4) << p;
    }
    TrainerSnapshot snap;
    EXPECT_EQ(store.loadLatest(snap).gen, 6u);
    EXPECT_EQ(snap.step, 6u);
}

TEST(CkptStore, ResumesFromPreviousOkGeneration)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("ckpt_prev_ok");
    CheckpointStore store(cfg);
    for (std::uint64_t s = 1; s <= 3; ++s)
        ASSERT_EQ(store.commit(makeSnap(s)),
                  CheckpointWriteResult::Ok);
    flipBit(cfg.dir + "/" + CheckpointStore::generationFileName(3),
            40, 3);

    TrainerSnapshot snap;
    const auto out = store.loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.gen, 2u);
    EXPECT_EQ(out.skippedCorrupt, 1u);
    EXPECT_EQ(snap.step, 2u);
}

TEST(CkptStore, NeverPrunesSoleOkGeneration)
{
    const std::string dir = freshDir("ckpt_sole_ok");
    CheckpointStoreConfig cfg;
    cfg.dir = dir;
    cfg.keep = 3;
    {
        CheckpointStore store(cfg);
        for (std::uint64_t s = 1; s <= 3; ++s)
            ASSERT_EQ(store.commit(makeSnap(s)),
                      CheckpointWriteResult::Ok);
    }
    // Generations 2 and 3 rot on disk; only 1 still verifies.
    flipBit(dir + "/" + CheckpointStore::generationFileName(2), 33, 1);
    flipBit(dir + "/" + CheckpointStore::generationFileName(3), 51, 6);

    CheckpointStoreConfig tight = cfg;
    tight.keep = 1;
    CheckpointStore store(tight);
    EXPECT_TRUE(store.prune());

    // Retention wanted to keep only generation 3, but 3 is corrupt:
    // the sole verifying generation must have survived the prune.
    EXPECT_TRUE(pathExists(
        dir + "/" + CheckpointStore::generationFileName(1)));
    TrainerSnapshot snap;
    const auto out = store.loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.gen, 1u);
    EXPECT_EQ(snap.step, 1u);
}

TEST(CkptStore, ManifestLossFallsBackToDirectoryScan)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("ckpt_scan");
    CheckpointStore store(cfg);
    ASSERT_EQ(store.commit(makeSnap(1)), CheckpointWriteResult::Ok);
    ASSERT_EQ(store.commit(makeSnap(2)), CheckpointWriteResult::Ok);

    const std::string manifest =
        cfg.dir + "/" + CheckpointStore::kManifestName;
    const auto manifestBytes = readAll(manifest);
    ASSERT_GT(manifestBytes.size(), 0u);

    // Deleted manifest: resume still works off the directory.
    std::remove(manifest.c_str());
    TrainerSnapshot snap;
    auto out = store.loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.gen, 2u);
    EXPECT_FALSE(out.usedManifest);

    // A manifest torn at *any* byte never breaks resume: either it
    // still parses, or the scan fallback kicks in. Never garbage.
    for (std::size_t len = 0; len < manifestBytes.size(); ++len) {
        writeAll(manifest, manifestBytes.data(), len);
        TrainerSnapshot s;
        const auto o = store.loadLatest(s);
        ASSERT_EQ(o.result, CheckpointLoadResult::Ok)
            << "manifest truncated to " << len << " bytes";
        ASSERT_EQ(s.step, o.gen); // step == gen in this setup
    }
}

// ------------------------------------------------------ torn-write fuzz

TEST(TornWrite, TruncationNeverLoadsGarbage)
{
    const std::string dir = freshDir("torn_trunc");
    const std::string whole = dir + "/whole.bin";
    const std::string torn = dir + "/torn.bin";
    ASSERT_EQ(nn::guard::writeCheckpointEx(whole, makeSnap(11)),
              CheckpointWriteResult::Ok);
    const auto bytes = readAll(whole);
    ASSERT_GT(bytes.size(), 0u);

    TrainerSnapshot snap;
    ASSERT_EQ(nn::guard::readCheckpoint(whole, snap),
              CheckpointLoadResult::Ok);

    // Every proper prefix must classify Missing/Corrupt — a torn
    // write can truncate at literally any byte.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeAll(torn, bytes.data(), len);
        TrainerSnapshot out;
        const auto res = nn::guard::readCheckpoint(torn, out);
        ASSERT_NE(res, CheckpointLoadResult::Ok)
            << "truncation to " << len << " bytes loaded as Ok";
    }
}

TEST(TornWrite, SeededBitFlipsAlwaysDetected)
{
    const std::string dir = freshDir("torn_flip");
    const std::string whole = dir + "/whole.bin";
    const std::string flipped = dir + "/flipped.bin";
    ASSERT_EQ(nn::guard::writeCheckpointEx(whole, makeSnap(13)),
              CheckpointWriteResult::Ok);
    const auto bytes = readAll(whole);
    ASSERT_GT(bytes.size(), 0u);

    Rng rng(0xF11Fu);
    for (int trial = 0; trial < 256; ++trial) {
        auto copy = bytes;
        const std::size_t byte = static_cast<std::size_t>(
            rng.below(copy.size()));
        const unsigned bit =
            static_cast<unsigned>(rng.below(8));
        copy[byte] = static_cast<char>(copy[byte] ^ (1u << bit));
        writeAll(flipped, copy.data(), copy.size());
        TrainerSnapshot out;
        const auto res = nn::guard::readCheckpoint(flipped, out);
        ASSERT_NE(res, CheckpointLoadResult::Ok)
            << "flip of bit " << bit << " at byte " << byte
            << " loaded as Ok";
    }
}

// ----------------------------------------------------- durability knobs

TEST(TornWrite, WriteResultDistinguishesFailureStages)
{
    // DirMissing: the destination directory vanished (typed so the
    // async writer's retry budget treats it as transient).
    EXPECT_EQ(nn::guard::writeCheckpointEx(
                  "/nonexistent-dir/x.bin", makeSnap(1)),
              CheckpointWriteResult::DirMissing);
    // A throwing hook aborts the write, removes the temp file, and
    // propagates (the async writer relies on that).
    const std::string dir = freshDir("torn_stages");
    nn::guard::CheckpointWriteOptions opts;
    opts.onWrite = [](std::size_t) {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(nn::guard::writeCheckpointEx(dir + "/x.bin",
                                              makeSnap(1), opts),
                 std::runtime_error);
    EXPECT_FALSE(pathExists(dir + "/x.bin"));
    EXPECT_FALSE(pathExists(dir + "/x.bin.tmp"));
}

// -------------------------------------------------------- async writer

TEST(AsyncCkpt, DrainedCommitsMatchSyncCommits)
{
    CheckpointStoreConfig sa, sb;
    sa.dir = freshDir("async_sync_a");
    sb.dir = freshDir("async_sync_b");
    CheckpointStore syncStore(sa), asyncStore(sb);
    {
        AsyncCheckpointWriter writer(asyncStore);
        for (std::uint64_t s = 1; s <= 5; ++s) {
            ASSERT_EQ(syncStore.commit(makeSnap(s)),
                      CheckpointWriteResult::Ok);
            writer.submit(makeSnap(s));
            ASSERT_EQ(writer.drain(), CheckpointWriteResult::Ok);
        }
        EXPECT_EQ(writer.committed(), 5u);
        EXPECT_EQ(writer.dropped(), 0u);
    }
    std::vector<ManifestEntry> a, b;
    ASSERT_TRUE(syncStore.readManifest(a));
    ASSERT_TRUE(asyncStore.readManifest(b));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].gen, b[i].gen);
        EXPECT_EQ(a[i].step, b[i].step);
        // Identical snapshot bytes => identical manifest CRCs.
        EXPECT_EQ(a[i].crc, b[i].crc);
    }
}

TEST(AsyncCkpt, LatestWinsReplacesPendingSnapshot)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("async_latest");
    // Gate the first commit inside its write so two more submits can
    // pile up behind it deterministically.
    std::mutex m;
    std::condition_variable cv;
    bool started = false, release = false;
    cfg.write.onWrite = [&](std::size_t) {
        std::unique_lock<std::mutex> lock(m);
        if (!started) {
            started = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        }
    };
    CheckpointStore store(cfg);
    AsyncCheckpointWriter writer(store);

    writer.submit(makeSnap(1));
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return started; });
    }
    writer.submit(makeSnap(2)); // parked behind the gated write
    writer.submit(makeSnap(3)); // replaces 2 (latest wins)
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    ASSERT_EQ(writer.drain(), CheckpointWriteResult::Ok);
    EXPECT_EQ(writer.dropped(), 1u);
    EXPECT_EQ(writer.committed(), 2u);

    TrainerSnapshot snap;
    const auto out = store.loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 3u); // the newest snapshot always lands
}

TEST(AsyncCkpt, PropagatesWriterExceptions)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("async_throw");
    cfg.write.onWrite = [](std::size_t) {
        throw std::runtime_error("disk on fire");
    };
    CheckpointStore store(cfg);
    AsyncCheckpointWriter writer(store);
    writer.submit(makeSnap(1));
    EXPECT_THROW(writer.drain(), std::runtime_error);
    // The error is consumed; the writer remains usable.
    EXPECT_EQ(writer.drain(), CheckpointWriteResult::Ok);
    EXPECT_EQ(writer.committed(), 0u);
}

TEST(AsyncCkpt, RetriesTransientWriteFailuresWithinBudget)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("async_retry");
    // Fail injection: the first N write calls throw, then the disk
    // "recovers". The first commit attempt dies on its first chunk;
    // the writer's bounded retry must land the snapshot anyway.
    std::atomic<int> failuresLeft{2};
    cfg.write.onWrite = [&](std::size_t) {
        if (failuresLeft.fetch_sub(1, std::memory_order_relaxed) > 0)
            throw std::runtime_error("transient write failure");
    };
    CheckpointStore store(cfg);
    auto &retriesMetric =
        obs::MetricRegistry::instance().counter("ckpt.write_retries");
    const double metricBefore = retriesMetric.value();

    AsyncCheckpointWriter writer(store);
    writer.submit(makeSnap(7));
    ASSERT_EQ(writer.drain(), CheckpointWriteResult::Ok);
    EXPECT_EQ(writer.committed(), 1u);
    EXPECT_GE(writer.retried(), 1u);
    EXPECT_GE(retriesMetric.value() - metricBefore, 1.0);

    TrainerSnapshot snap;
    EXPECT_EQ(store.loadLatest(snap).result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 7u);
}

TEST(AsyncCkpt, RetryBudgetExhaustionSurfacesTheError)
{
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("async_retry_budget");
    std::atomic<int> attempts{0};
    cfg.write.onWrite = [&](std::size_t) {
        attempts.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("disk stays on fire");
    };
    CheckpointStore store(cfg);
    AsyncCheckpointWriter::RetryPolicy retry;
    retry.maxRetries = 1;
    retry.backoffBaseMicros = 0; // no sleeping in tests
    AsyncCheckpointWriter writer(store, retry);
    writer.submit(makeSnap(1));
    EXPECT_THROW(writer.drain(), std::runtime_error);
    EXPECT_EQ(writer.committed(), 0u);
    EXPECT_EQ(writer.retried(), 1u); // budget spent, then surfaced
    EXPECT_EQ(attempts.load(), 2);   // original + one retry
}

// ------------------------------------------------------ signal shutdown

TEST(SignalShutdown, HandlerSetsFlagOnSigterm)
{
    clearShutdownRequest();
    installShutdownSignalHandler();
    EXPECT_FALSE(shutdownRequested());
    ::raise(SIGTERM);
    EXPECT_TRUE(shutdownRequested());
    clearShutdownRequest();
}

TEST(SignalShutdown, TrainerWritesFinalCheckpointAndStops)
{
    const std::string dir = freshDir("signal_final");
    nn::SpiralDataset data(2, 0.1, 17);
    Rng rng(18);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));

    nn::QuantTrainerConfig cfg;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.resilience.enabled = true;
    cfg.resilience.checkpointDir = dir;
    cfg.resilience.checkpointInterval = 1000; // only the final one
    cfg.resilience.handleSignals = true;
    cfg.resilience.dataRng = &data.rng();
    nn::QuantTrainer trainer(net, cfg);

    clearShutdownRequest();
    for (int i = 0; i < 3; ++i) {
        const auto b = data.sample(16);
        trainer.stepClassification(b.inputs, b.labels);
    }
    EXPECT_FALSE(trainer.stopRequested());
    requestShutdown(); // what the SIGTERM handler does
    const auto b = data.sample(16);
    trainer.stepClassification(b.inputs, b.labels);
    EXPECT_TRUE(trainer.stopRequested());
    clearShutdownRequest();

    // The final synchronous checkpoint is on disk and resumable at
    // exactly the stopped step.
    ASSERT_NE(trainer.checkpointStore(), nullptr);
    TrainerSnapshot snap;
    const auto out = trainer.checkpointStore()->loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 4u);
}

TEST(SignalShutdown, CancelTokenStopsTrainerCheckpointClean)
{
    const std::string dir = freshDir("cancel_token_stop");
    nn::SpiralDataset data(2, 0.1, 17);
    Rng rng(18);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));

    CancelToken token;
    nn::QuantTrainerConfig cfg;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.resilience.enabled = true;
    cfg.resilience.checkpointDir = dir;
    cfg.resilience.checkpointInterval = 1000; // only the final one
    cfg.resilience.cancel = &token;           // no signal handling
    cfg.resilience.dataRng = &data.rng();
    nn::QuantTrainer trainer(net, cfg);

    for (int i = 0; i < 2; ++i) {
        const auto b = data.sample(16);
        trainer.stepClassification(b.inputs, b.labels);
    }
    EXPECT_FALSE(trainer.stopRequested());
    token.cancel(CancelReason::Deadline);
    const auto b = data.sample(16);
    trainer.stepClassification(b.inputs, b.labels);
    // The cancel is observed at the step boundary: the in-flight step
    // completes, the final checkpoint commits, and later steps no-op.
    EXPECT_TRUE(trainer.stopRequested());
    EXPECT_TRUE(trainer.cancelObserved());

    ASSERT_NE(trainer.checkpointStore(), nullptr);
    TrainerSnapshot snap;
    const auto out = trainer.checkpointStore()->loadLatest(snap);
    EXPECT_EQ(out.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 3u);
}

// ------------------------------------------- fork-based kill–restart

/** Run fn in a forked child; returns the wait status. */
template <typename Fn>
int
inForkedChild(Fn fn)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ThreadPool::instance().reinitAfterFork();
        fn();
        ::_exit(0);
    }
    EXPECT_GT(pid, 0);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

TEST(CrashResume, KillRestartBitwiseIdentical)
{
    const std::string base = freshDir("kill_restart");
    constexpr std::uint64_t kSteps = 40;

    nn::guard::CrashHarnessConfig ref;
    ref.seed = 23;
    ref.steps = kSteps;
    ref.ckptEvery = 5;
    ref.dir = base + "/ref";
    ref.mastersOut = base + "/ref-masters.bin";
    int status = inForkedChild(
        [&] { nn::guard::runCrashHarness(ref); });
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    const auto refBytes = readAll(ref.mastersOut);
    ASSERT_GT(refBytes.size(), 0u);

    sim::KillScheduleConfig scfg;
    scfg.seed = 5;
    scfg.kills = 12;
    scfg.maxStep = kSteps;
    const auto plan = sim::planKillPoints(scfg);
    ASSERT_EQ(plan.size(), 12u);
    std::size_t midWrites = 0;

    for (std::size_t t = 0; t < plan.size(); ++t) {
        const auto &kp = plan[t];
        if (kp.midWrite)
            ++midWrites;
        const std::string dir =
            base + "/trial-" + std::to_string(t);

        nn::guard::CrashHarnessConfig kill = ref;
        kill.dir = dir;
        kill.mastersOut.clear();
        if (kp.midWrite)
            kill.killAtWriteBytes = kp.writeBytes + 1;
        else
            kill.killAtStep = kp.step;
        status = inForkedChild(
            [&] { nn::guard::runCrashHarness(kill); });
        ASSERT_TRUE(WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL)
            << "trial " << t << ": child survived its kill point";

        nn::guard::CrashHarnessConfig res = ref;
        res.dir = dir;
        res.resume = true;
        res.mastersOut = dir + "/masters.bin";
        status = inForkedChild(
            [&] { nn::guard::runCrashHarness(res); });
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "trial " << t << ": resume leg failed";

        const auto gotBytes = readAll(res.mastersOut);
        ASSERT_EQ(gotBytes.size(), refBytes.size()) << "trial " << t;
        EXPECT_EQ(std::memcmp(gotBytes.data(), refBytes.data(),
                              refBytes.size()),
                  0)
            << "trial " << t
            << ": resumed masters differ from uninterrupted run";
    }
    // The schedule must exercise the mid-checkpoint-write window.
    EXPECT_GE(midWrites, 1u);
}

TEST(CrashResume, ManifestStaysAtomicUnderMidPruneKill)
{
    // Kill a child at successive byte offsets of the manifest rewrite
    // a prune performs; the store must always come back Ok.
    for (std::size_t killByte = 1; killByte < 160; killByte += 7) {
        const std::string dir = freshDir(
            "midprune_" + std::to_string(killByte));
        CheckpointStoreConfig cfg;
        cfg.dir = dir;
        cfg.keep = 3;
        {
            CheckpointStore store(cfg);
            for (std::uint64_t s = 1; s <= 3; ++s)
                ASSERT_EQ(store.commit(makeSnap(s)),
                          CheckpointWriteResult::Ok);
        }

        const int status = inForkedChild([&] {
            CheckpointStoreConfig tight;
            tight.dir = dir;
            tight.keep = 1;
            auto killed = std::make_shared<std::uint64_t>(0);
            tight.write.onWrite = [killed,
                                   killByte](std::size_t chunk) {
                *killed += chunk;
                if (*killed >= killByte)
                    ::raise(SIGKILL);
            };
            CheckpointStore store(tight);
            store.prune();
        });
        // Offsets past the manifest size let the child finish; both
        // outcomes must leave a loadable store.
        const bool killed =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
        const bool finished =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        ASSERT_TRUE(killed || finished);

        CheckpointStore store(cfg);
        TrainerSnapshot snap;
        const auto out = store.loadLatest(snap);
        ASSERT_EQ(out.result, CheckpointLoadResult::Ok)
            << "kill at manifest byte " << killByte
            << " left no loadable generation";
        ASSERT_GE(out.gen, 1u);
        ASSERT_LE(out.gen, 3u);
        ASSERT_EQ(snap.step, out.gen); // step == gen in this setup
    }
}

// Death test => forks, so it lives in the CrashResume group with the
// other forking tests (kept out of the TSAN selection).
TEST(CrashResume, SecondShutdownSignalExitsImmediately)
{
    EXPECT_EXIT(
        {
            clearShutdownRequest();
            installShutdownSignalHandler();
            ::raise(SIGTERM); // first: request a graceful drain
            ::raise(SIGTERM); // second: escalate to immediate exit
            ::_exit(0);       // never reached
        },
        ::testing::ExitedWithCode(128 + SIGTERM),
        "second shutdown signal");
    EXPECT_EXIT(
        {
            clearShutdownRequest();
            installShutdownSignalHandler();
            ::raise(SIGINT);
            ::raise(SIGINT);
            ::_exit(0);
        },
        ::testing::ExitedWithCode(128 + SIGINT),
        "exiting immediately");
}

// ------------------------------------------- vanished directories

/** rm -rf for the flat store layout the tests create. */
void
removeTree(const std::string &dir)
{
    for (const std::string &f : listDir(dir))
        std::remove((dir + "/" + f).c_str());
    ::rmdir(dir.c_str());
}

TEST(DirMissing, StoreDirRemovedBetweenCommitsIsRecreated)
{
    // Someone rm -rf'd the checkpoint tree between two commits. The
    // next commit's leading ensureDir restores it transparently.
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("dirmiss_recreate");
    CheckpointStore store(cfg);
    ASSERT_EQ(store.commit(makeSnap(1)), CheckpointWriteResult::Ok);
    removeTree(cfg.dir);
    EXPECT_EQ(store.commit(makeSnap(2)), CheckpointWriteResult::Ok);
    TrainerSnapshot snap;
    EXPECT_EQ(store.loadLatest(snap).result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 2u);
}

TEST(DirMissing, StoreDirRemovedMidCommitIsRecreatedAndRetried)
{
    // Nastier: the tree vanishes *during* the commit (after the
    // leading ensureDir, while the snapshot body is streaming out).
    // The rename fails ENOENT, writeCheckpointEx types it DirMissing,
    // and commit() recreates the directory and retries in place — the
    // commit still lands, observable via ckpt.dir_recreated.
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("dirmiss_midcommit");
    auto nuked = std::make_shared<bool>(false);
    const std::string dir = cfg.dir;
    cfg.write.onWrite = [nuked, dir](std::size_t) {
        if (*nuked)
            return;
        *nuked = true;
        for (const std::string &f : listDir(dir))
            std::remove((dir + "/" + f).c_str());
        ::rmdir(dir.c_str());
    };
    CheckpointStore store(cfg);
    const double before = obs::MetricRegistry::instance()
                              .counter("ckpt.dir_recreated")
                              .value();
    EXPECT_EQ(store.commit(makeSnap(2)), CheckpointWriteResult::Ok);
    EXPECT_GE(obs::MetricRegistry::instance()
                      .counter("ckpt.dir_recreated")
                      .value() -
                  before,
              1.0);
    TrainerSnapshot snap;
    EXPECT_EQ(store.loadLatest(snap).result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 2u);
}

TEST(DirMissing, MissingParentSurfacesTypedResultAfterRetryBudget)
{
    // The whole parent tree is gone; single-level mkdir cannot help.
    // The async writer must spend its retry budget and then record
    // the typed DirMissing result — never throw, never mislabel it
    // as a generic open failure.
    CheckpointStoreConfig cfg;
    cfg.dir = ::testing::TempDir() + "dirmiss_noparent/store";
    removeTree(::testing::TempDir() + "dirmiss_noparent");
    CheckpointStore store(cfg);
    AsyncCheckpointWriter::RetryPolicy retry;
    retry.maxRetries = 2;
    retry.backoffBaseMicros = 0;
    AsyncCheckpointWriter writer(store, retry);
    writer.submit(makeSnap(3));
    EXPECT_EQ(writer.drain(), CheckpointWriteResult::DirMissing);
    EXPECT_EQ(writer.committed(), 0u);
    EXPECT_EQ(writer.retried(), 2u);
}

TEST(DirMissing, ParentRestoredMidRetryRecoversWithinBudget)
{
    // ENOENT as a *transient* failure: the parent reappears while the
    // writer is still inside its retry budget (an operator restoring
    // a mount, say). The drain must come back Ok with retries > 0.
    const std::string parent = ::testing::TempDir() + "dirmiss_flaky";
    CheckpointStoreConfig cfg;
    cfg.dir = parent + "/store";
    removeTree(cfg.dir);
    removeTree(parent);
    CheckpointStore store(cfg);
    AsyncCheckpointWriter::RetryPolicy retry;
    retry.maxRetries = 5;
    retry.backoffBaseMicros = 20000;
    auto &retriesMetric =
        obs::MetricRegistry::instance().counter("ckpt.write_retries");
    const double retriesBefore = retriesMetric.value();
    AsyncCheckpointWriter writer(store, retry);
    writer.submit(makeSnap(4));
    // Wait for the first failed attempt to enter retry (observable
    // via the retries metric), then restore the parent; at least four
    // budgeted attempts remain to pick it up.
    for (int spin = 0; spin < 4000; ++spin) {
        if (retriesMetric.value() > retriesBefore)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(retriesMetric.value(), retriesBefore);
    ASSERT_TRUE(ensureDir(parent));
    ASSERT_EQ(writer.drain(), CheckpointWriteResult::Ok);
    EXPECT_EQ(writer.committed(), 1u);
    EXPECT_GE(writer.retried(), 1u);
    TrainerSnapshot snap;
    EXPECT_EQ(store.loadLatest(snap).result, CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 4u);
}

} // namespace
} // namespace cq
