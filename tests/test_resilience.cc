/**
 * @file
 * Tests of the resilience subsystem: CRC32, the deterministic fault
 * injector, numerical guardrails, checkpoint/rollback, the NdpEngine
 * fault hook, and the end-to-end recovery contract — a faulted run
 * with guardrails finishes close to the clean run while the same
 * faults without guardrails diverge.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <unistd.h>
#include <memory>
#include <string>
#include <vector>

#include "arch/ndp_engine.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/guard/checkpoint.h"
#include "nn/guard/guardrails.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/quant_trainer.h"
#include "sim/faults/fault_injector.h"

namespace cq {
namespace {

using nn::guard::CheckpointLoadResult;
using nn::guard::TrainerSnapshot;

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------- CRC32

TEST(Crc32, KnownAnswer)
{
    // The standard CRC-32 check value (reflected 0xEDB88320 poly).
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
}

TEST(Crc32, SeedChainsAcrossFragments)
{
    const char *msg = "streaming checksums compose";
    const std::size_t n = 27;
    const std::uint32_t whole = crc32(msg, n);
    for (std::size_t split = 0; split <= n; ++split) {
        const std::uint32_t part = crc32(msg, split);
        EXPECT_EQ(crc32(msg + split, n - split, part), whole);
    }
}

TEST(Crc32, DetectsSingleBitCorruption)
{
    std::vector<float> buf(64, 1.25f);
    const std::uint32_t clean = crc32(buf.data(), buf.size() * 4);
    buf[17] = std::nextafter(buf[17], 2.0f);
    EXPECT_NE(crc32(buf.data(), buf.size() * 4), clean);
}

// -------------------------------------------------------- fault injector

TEST(FaultInjector, DeterministicAcrossThreadCounts)
{
    auto makeFaulted = [] {
        sim::FaultConfig cfg;
        cfg.seed = 0xBEEF;
        cfg.bitFlipsPerMbit = 5000.0;
        cfg.burstLength = 3;
        sim::FaultInjector inj(cfg);
        Tensor t({4096});
        t.fill(1.0f);
        for (int pass = 0; pass < 10; ++pass)
            inj.corrupt(t, sim::FaultSite::MasterWeights);
        return std::make_pair(t, inj.stats().get("faults.bitsFlipped"));
    };
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(1);
    const auto [serial, flippedSerial] = makeFaulted();
    pool.setNumThreads(4);
    const auto [parallel, flippedParallel] = makeFaulted();
    pool.setNumThreads(0);

    EXPECT_GT(flippedSerial, 0.0);
    EXPECT_EQ(flippedSerial, flippedParallel);
    // memcmp, not operator==: flips may have minted NaNs, and float
    // equality would reject bitwise-identical NaN payloads.
    ASSERT_EQ(serial.numel(), parallel.numel());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.numel() * sizeof(float)),
              0);
}

TEST(FaultInjector, ZeroRateFlipsNothing)
{
    sim::FaultConfig cfg;
    cfg.bitFlipsPerMbit = 0.0;
    sim::FaultInjector inj(cfg);
    Tensor t({1024});
    t.fill(3.0f);
    EXPECT_EQ(inj.corrupt(t, sim::FaultSite::MasterWeights), 0u);
    EXPECT_EQ(inj.stats().get("faults.events"), 0.0);
}

TEST(FaultInjector, MaybeCorruptHonoursTargetGating)
{
    sim::FaultConfig cfg;
    cfg.bitFlipsPerMbit = 1e6; // flip a lot, when allowed
    cfg.targetMasterWeights = true;
    cfg.targetGradients = false;
    sim::FaultInjector inj(cfg);
    Tensor t({256});
    t.fill(1.0f);
    EXPECT_EQ(inj.maybeCorrupt(t.data(), t.numel(),
                               sim::FaultSite::Gradients),
              0u);
    EXPECT_GT(inj.maybeCorrupt(t.data(), t.numel(),
                               sim::FaultSite::MasterWeights),
              0u);
    EXPECT_EQ(inj.stats().get("faults.site.gradients"), 0.0);
    EXPECT_GT(inj.stats().get("faults.site.masterWeights"), 0.0);
}

TEST(FaultInjector, BurstFlipsConsecutiveBits)
{
    sim::FaultConfig cfg;
    cfg.seed = 7;
    cfg.bitFlipsPerMbit = 30.0; // ~1 event on a 32 Kbit buffer
    cfg.burstLength = 8;
    sim::FaultInjector inj(cfg);
    Tensor t({1024});
    t.fill(0.0f);
    std::size_t flipped = 0;
    while (flipped == 0)
        flipped = inj.corrupt(t, sim::FaultSite::MasterWeights);
    // All-zero start: flipped bit count must match set bits.
    std::size_t setBits = 0;
    for (std::size_t i = 0; i < t.numel(); ++i) {
        std::uint32_t w;
        std::memcpy(&w, &t.data()[i], 4);
        setBits += static_cast<std::size_t>(__builtin_popcount(w));
    }
    EXPECT_EQ(setBits, flipped);
}

// ------------------------------------------------------------ guardrails

TEST(Guardrails, ScanTensorCensus)
{
    Tensor t({1 << 16});
    t.fill(0.5f);
    t[100] = std::numeric_limits<float>::quiet_NaN();
    t[1 << 15] = std::numeric_limits<float>::infinity();
    t[60000] = -std::numeric_limits<float>::infinity();
    t[7] = -123.0f;
    const auto h = nn::guard::scanTensor(t);
    EXPECT_EQ(h.nanCount, 1u);
    EXPECT_EQ(h.infCount, 2u);
    EXPECT_FLOAT_EQ(h.maxAbs, 123.0f);
    EXPECT_FALSE(h.finite());
}

TEST(Guardrails, ScanTensorDeterministicAcrossThreadCounts)
{
    Rng rng(99);
    Tensor t({100000});
    t.fillGaussian(rng, 0.0f, 10.0f);
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(1);
    const auto a = nn::guard::scanTensor(t);
    pool.setNumThreads(4);
    const auto b = nn::guard::scanTensor(t);
    pool.setNumThreads(0);
    EXPECT_EQ(a.nanCount, b.nanCount);
    EXPECT_EQ(a.infCount, b.infCount);
    EXPECT_EQ(a.maxAbs, b.maxAbs); // bitwise float equality
}

TEST(Guardrails, WatchdogTripsOnDivergence)
{
    nn::guard::GuardrailConfig cfg;
    cfg.warmupSteps = 3;
    cfg.lossSpikeFactor = 10.0;
    nn::guard::LossWatchdog dog(cfg);
    // Healthy descent through warmup.
    EXPECT_FALSE(dog.observe(2.0));
    EXPECT_FALSE(dog.observe(1.8));
    EXPECT_FALSE(dog.observe(1.6));
    EXPECT_FALSE(dog.observe(1.5));
    // A 10x spike over the EMA trips after warmup...
    EXPECT_TRUE(dog.observe(50.0));
    // ...and must not have polluted the baseline.
    EXPECT_FALSE(dog.observe(1.4));
    EXPECT_TRUE(dog.observe(std::numeric_limits<double>::quiet_NaN()));
    EXPECT_TRUE(dog.observe(std::numeric_limits<double>::infinity()));
    EXPECT_TRUE(dog.observe(cfg.absoluteLossLimit * 2.0));
}

TEST(Guardrails, WatchdogSpikeCheckWaitsForWarmup)
{
    nn::guard::GuardrailConfig cfg;
    cfg.warmupSteps = 5;
    nn::guard::LossWatchdog dog(cfg);
    EXPECT_FALSE(dog.observe(1.0));
    // Big but finite jumps during warmup are tolerated (initialization
    // noise), as long as they stay under the absolute limit.
    EXPECT_FALSE(dog.observe(100.0));
    EXPECT_FALSE(dog.observe(1.0));
}

TEST(Guardrails, CircuitBreakerCooldownAndRearm)
{
    nn::guard::CircuitBreakerBank bank(3, 2);
    EXPECT_FALSE(bank.open(0));
    bank.trip(1);
    EXPECT_FALSE(bank.open(0));
    EXPECT_TRUE(bank.open(1));
    EXPECT_EQ(bank.openCount(), 1u);
    bank.countDown();
    EXPECT_TRUE(bank.open(1));
    bank.countDown();
    EXPECT_FALSE(bank.open(1)); // re-armed
    bank.tripAll();
    EXPECT_EQ(bank.openCount(), 3u);
    EXPECT_EQ(bank.trips(), 2u);
}

TEST(Guardrails, MonitorCountsAndTrips)
{
    nn::guard::GuardrailConfig cfg;
    nn::guard::HealthMonitor mon(cfg, 2);
    Tensor bad({8});
    bad.fill(1.0f);
    bad[3] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(mon.checkTensor(bad, "activation", 1));
    EXPECT_EQ(mon.stats().get("guard.nansCaught"), 1.0);
    EXPECT_EQ(mon.stats().get("guard.unhealthy.activation"), 1.0);
    mon.tripLayer(1);
    EXPECT_TRUE(mon.breakers().open(1));
    EXPECT_FALSE(mon.breakers().open(0));

    Tensor good({8});
    good.fill(0.25f);
    EXPECT_FALSE(mon.checkTensor(good, "activation", 0));
}

// ------------------------------------------------------------ checkpoint

TrainerSnapshot
makeSnapshot()
{
    TrainerSnapshot snap;
    snap.step = 41;
    snap.optimizerStep = 40;
    Rng stream(123);
    stream.gaussian(); // leave a cached Box-Muller half in the state
    snap.hasRngState = true;
    snap.rngState = stream.state();
    Rng rng(5);
    for (std::size_t i = 0; i < 3; ++i) {
        Tensor w({4, 5}), m({4, 5}), v({4, 5});
        w.fillGaussian(rng, 0.0f, 1.0f);
        m.fillGaussian(rng, 0.0f, 0.1f);
        v.fillGaussian(rng, 0.0f, 0.01f);
        snap.masters.push_back(w);
        snap.m.push_back(m);
        snap.v.push_back(v);
    }
    return snap;
}

TEST(Checkpoint, RoundTripsBitwise)
{
    const std::string path = tempPath("ckpt_roundtrip.bin");
    const TrainerSnapshot snap = makeSnapshot();
    ASSERT_TRUE(nn::guard::writeCheckpoint(path, snap));

    TrainerSnapshot back;
    ASSERT_EQ(nn::guard::readCheckpoint(path, back),
              CheckpointLoadResult::Ok);
    EXPECT_EQ(back.step, snap.step);
    EXPECT_EQ(back.optimizerStep, snap.optimizerStep);
    ASSERT_EQ(back.masters.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(back.masters[i] == snap.masters[i]);
        EXPECT_TRUE(back.m[i] == snap.m[i]);
        EXPECT_TRUE(back.v[i] == snap.v[i]);
    }
    // The restored Rng stream must continue bit-exactly (including the
    // cached Box-Muller half).
    ASSERT_TRUE(back.hasRngState);
    Rng original(123);
    original.gaussian();
    Rng restored(1);
    restored.setState(back.rngState);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(original.next(), restored.next());
    EXPECT_EQ(original.gaussian(), restored.gaussian());
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileClassified)
{
    TrainerSnapshot out;
    EXPECT_EQ(nn::guard::readCheckpoint(
                  tempPath("ckpt_never_written.bin"), out),
              CheckpointLoadResult::Missing);
}

TEST(Checkpoint, CorruptedTensorPayloadDetected)
{
    const std::string path = tempPath("ckpt_corrupt.bin");
    ASSERT_TRUE(nn::guard::writeCheckpoint(path, makeSnapshot()));

    // Flip one byte deep in the tensor payload region.
    FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -37, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);

    TrainerSnapshot out;
    EXPECT_EQ(nn::guard::readCheckpoint(path, out),
              CheckpointLoadResult::Corrupt);
    std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileDetected)
{
    const std::string path = tempPath("ckpt_truncated.bin");
    ASSERT_TRUE(nn::guard::writeCheckpoint(path, makeSnapshot()));
    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(full, 64);
    EXPECT_EQ(truncate(path.c_str(), full / 2), 0);

    TrainerSnapshot out;
    EXPECT_EQ(nn::guard::readCheckpoint(path, out),
              CheckpointLoadResult::Corrupt);
    std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicDetected)
{
    const std::string path = tempPath("ckpt_magic.bin");
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACKPT-and-some-trailing-bytes", f);
    std::fclose(f);
    TrainerSnapshot out;
    EXPECT_EQ(nn::guard::readCheckpoint(path, out),
              CheckpointLoadResult::Corrupt);
    std::remove(path.c_str());
}

// ------------------------------------------------------ NdpEngine faults

TEST(NdpFaults, AttachedInjectorCorruptsDramRows)
{
    nn::OptimizerConfig ocfg; // SGD
    arch::NdpEngine ndp;
    ndp.configure(nn::NdpoConstants::fromConfig(ocfg));

    sim::FaultConfig fcfg;
    fcfg.seed = 0xD00D;
    fcfg.bitFlipsPerMbit = 1e5;
    fcfg.targetMasterWeights = true;
    fcfg.targetOptimizerState = true;
    sim::FaultInjector inj(fcfg);

    std::vector<float> wClean(512, 1.0f), mClean(512, 0.0f),
        vClean(512, 0.0f);
    const std::vector<float> g(512, 0.0f); // zero grad: SGD is identity
    auto wFaulted = wClean, mFaulted = mClean, vFaulted = vClean;

    arch::NdpEngine clean;
    clean.configure(nn::NdpoConstants::fromConfig(ocfg));
    clean.weightGradientStore(wClean, mClean, vClean, g);
    EXPECT_EQ(wClean, std::vector<float>(512, 1.0f));

    ndp.attachFaultInjector(&inj);
    ndp.weightGradientStore(wFaulted, mFaulted, vFaulted, g);
    // Raw-byte comparisons: flips may mint NaNs, which float equality
    // cannot compare.
    EXPECT_NE(std::memcmp(wFaulted.data(), wClean.data(),
                          wClean.size() * sizeof(float)),
              0);
    EXPECT_GT(inj.stats().get("faults.site.masterWeights"), 0.0);
    EXPECT_GT(inj.stats().get("faults.site.optimizerState"), 0.0);

    // Detaching stops injection (zero grad + SGD leaves w unchanged).
    ndp.attachFaultInjector(nullptr);
    auto wAfter = wFaulted;
    ndp.weightGradientStore(wFaulted, mFaulted, vFaulted, g);
    EXPECT_EQ(std::memcmp(wFaulted.data(), wAfter.data(),
                          wAfter.size() * sizeof(float)),
              0);
}

// ------------------------------------------------------------ end-to-end

nn::Network
makeMlp(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));
    return net;
}

struct RunResult
{
    double finalLoss = 0.0;
    double accuracy = 0.0;
    std::size_t rollbacks = 0;
    double watchdogTrips = 0.0;
    double breakerTrips = 0.0;
    bool sawNonFinite = false;
};

/**
 * Train the spiral MLP for 150 steps. Faults (when @p faultRate > 0)
 * are injected into the master weights during steps 40..60 only, so
 * checkpoints from the early phase are clean and the run has time to
 * recover afterwards.
 */
RunResult
runSpiral(bool guardrails, double faultRate, const std::string &ckpt)
{
    nn::SpiralDataset data(2, 0.1, 17);
    nn::Network net = makeMlp(18);

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    cfg.resilience.enabled = guardrails;
    cfg.resilience.checkpointPath = guardrails ? ckpt : "";
    cfg.resilience.checkpointInterval = 10;
    nn::QuantTrainer trainer(net, cfg);

    sim::FaultConfig fcfg;
    fcfg.seed = 0xFA117;
    fcfg.bitFlipsPerMbit = faultRate;
    fcfg.burstLength = 2;
    fcfg.targetMasterWeights = true;
    sim::FaultInjector inj(fcfg);

    RunResult r;
    for (int i = 0; i < 150; ++i) {
        trainer.setFaultInjector(
            faultRate > 0.0 && i >= 40 && i < 60 ? &inj : nullptr);
        const auto b = data.sample(64);
        r.finalLoss = trainer.stepClassification(b.inputs, b.labels);
        if (!std::isfinite(r.finalLoss))
            r.sawNonFinite = true;
    }
    const auto eval = data.evalSet(256);
    r.accuracy = trainer.evalAccuracy(eval.inputs, eval.labels);
    r.rollbacks = trainer.rollbackCount();
    const StatGroup stats = trainer.resilienceStats();
    r.watchdogTrips = stats.get("guard.watchdogTrips");
    r.breakerTrips = stats.get("guard.breakerTrips");
    return r;
}

/** A fault rate high enough to corrupt exponent bits every burst. */
constexpr double kAggressiveRate = 4000.0;

TEST(Resilience, EndToEndRecoveryVsDivergence)
{
    const std::string ckpt = tempPath("ckpt_e2e.bin");

    // Clean run: the tolerance baseline.
    const RunResult clean = runSpiral(true, 0.0, ckpt);
    EXPECT_EQ(clean.rollbacks, 0u);
    EXPECT_GT(clean.accuracy, 0.88);

    // Faulted run with guardrails: trips must fire, rollbacks must
    // restore CRC-verified state, and the run must end close to clean.
    const RunResult guarded = runSpiral(true, kAggressiveRate, ckpt);
    EXPECT_GT(guarded.breakerTrips + guarded.watchdogTrips, 0.0);
    EXPECT_GE(guarded.rollbacks, 1u);
    EXPECT_TRUE(std::isfinite(guarded.finalLoss));
    EXPECT_NEAR(guarded.finalLoss, clean.finalLoss, 0.25);
    EXPECT_GT(guarded.accuracy, clean.accuracy - 0.08);

    // Same faults, guardrails off: the run must visibly diverge —
    // non-finite losses or a final state far from the clean run.
    const RunResult bare = runSpiral(false, kAggressiveRate, ckpt);
    const bool diverged =
        bare.sawNonFinite || !std::isfinite(bare.finalLoss) ||
        bare.finalLoss > 10.0 * clean.finalLoss + 1.0 ||
        bare.accuracy < 0.75;
    EXPECT_TRUE(diverged)
        << "unguarded run: loss=" << bare.finalLoss
        << " acc=" << bare.accuracy;

    std::remove(ckpt.c_str());
}

TEST(Resilience, FaultedTrainingDeterministicAcrossThreadCounts)
{
    const std::string ckptA = tempPath("ckpt_thr1.bin");
    const std::string ckptB = tempPath("ckpt_thr4.bin");
    auto &pool = ThreadPool::instance();

    pool.setNumThreads(1);
    const RunResult serial = runSpiral(true, kAggressiveRate, ckptA);
    pool.setNumThreads(4);
    const RunResult parallel = runSpiral(true, kAggressiveRate, ckptB);
    pool.setNumThreads(0);

    // The whole faulted, guarded training run is bitwise reproducible:
    // identical loss, identical trip/rollback pattern, identical eval.
    EXPECT_EQ(serial.finalLoss, parallel.finalLoss);
    EXPECT_EQ(serial.accuracy, parallel.accuracy);
    EXPECT_EQ(serial.rollbacks, parallel.rollbacks);
    EXPECT_EQ(serial.watchdogTrips, parallel.watchdogTrips);
    EXPECT_EQ(serial.breakerTrips, parallel.breakerTrips);
    std::remove(ckptA.c_str());
    std::remove(ckptB.c_str());
}

TEST(Resilience, CheckpointNowWritesLoadableSnapshot)
{
    const std::string ckpt = tempPath("ckpt_now.bin");
    nn::SpiralDataset data(2, 0.1, 17);
    nn::Network net = makeMlp(18);
    nn::QuantTrainerConfig cfg;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.resilience.enabled = true;
    cfg.resilience.checkpointPath = ckpt;
    nn::QuantTrainer trainer(net, cfg);
    for (int i = 0; i < 3; ++i) {
        const auto b = data.sample(32);
        trainer.stepClassification(b.inputs, b.labels);
    }
    ASSERT_TRUE(trainer.checkpointNow());
    TrainerSnapshot snap;
    ASSERT_EQ(nn::guard::readCheckpoint(ckpt, snap),
              CheckpointLoadResult::Ok);
    EXPECT_EQ(snap.step, 3u);
    EXPECT_EQ(snap.optimizerStep, 3u);
    EXPECT_EQ(snap.masters.size(), 4u); // fc1 w/b + fc2 w/b
    std::remove(ckpt.c_str());
}

TEST(Resilience, DisabledResilienceMatchesLegacyTrainer)
{
    // With resilience off (the default) the trainer must behave
    // exactly as before the subsystem existed.
    auto run = [](bool enabled) {
        nn::SpiralDataset data(2, 0.1, 17);
        nn::Network net = makeMlp(18);
        nn::QuantTrainerConfig cfg;
        cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
        cfg.optimizer.kind = nn::OptimizerKind::Adam;
        cfg.optimizer.lr = 5e-3;
        cfg.resilience.enabled = enabled;
        nn::QuantTrainer trainer(net, cfg);
        double loss = 0.0;
        for (int i = 0; i < 40; ++i) {
            const auto b = data.sample(64);
            loss = trainer.stepClassification(b.inputs, b.labels);
        }
        return loss;
    };
    // A healthy run takes the same numerical path with monitoring on.
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace cq
