/**
 * @file
 * Tests of the in-situ fault-correction tiers (DESIGN.md §5.4): the
 * SEC-DED Hamming(72,64) codec and its sideband array, the coded-word
 * fault-injection surface, ABFT-checksummed GEMM (FP32 and quantized
 * datapaths), the checkpoint corruption diagnostics, and the
 * end-to-end trainer contract — an ECC-protected faulted run matches
 * the fault-free run bit for bit when every upset is single-bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "arch/quantized_gemm.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "dram/ecc.h"
#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/guard/checkpoint.h"
#include "nn/linear.h"
#include "nn/network.h"
#include "nn/quant_trainer.h"
#include "sim/faults/fault_injector.h"
#include "tensor/abft.h"
#include "tensor/tensor_ops.h"

namespace cq {
namespace {

// ------------------------------------------------------------ Ecc codec

TEST(Ecc, CleanWordDecodesOk)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = dram::eccEncodeWord(data);
        const dram::EccDecode d = dram::eccDecodeWord(data, check);
        EXPECT_EQ(d.status, dram::EccStatus::Ok);
        EXPECT_EQ(d.data, data);
        EXPECT_EQ(d.check, check);
        EXPECT_EQ(d.correctedBit, -1);
    }
}

TEST(Ecc, EverySingleBitPositionCorrects)
{
    // All 72 coded-bit positions: 64 data bits and 8 check bits.
    Rng rng(2);
    for (int trial = 0; trial < 8; ++trial) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = dram::eccEncodeWord(data);
        for (std::size_t p = 0; p < dram::kEccCodedBits; ++p) {
            std::uint64_t bad_data = data;
            std::uint8_t bad_check = check;
            if (p < dram::kEccDataBits)
                bad_data ^= 1ull << p;
            else
                bad_check ^= static_cast<std::uint8_t>(
                    1u << (p - dram::kEccDataBits));
            const dram::EccDecode d =
                dram::eccDecodeWord(bad_data, bad_check);
            EXPECT_EQ(d.status, dram::EccStatus::CorrectedSingle)
                << "bit " << p;
            EXPECT_EQ(d.data, data) << "bit " << p;
            EXPECT_EQ(d.check, check) << "bit " << p;
            EXPECT_EQ(d.correctedBit, static_cast<int>(p));
        }
    }
}

TEST(Ecc, AllDoubleBitPairsDetectedNeverMiscorrected)
{
    // Every unordered pair of distinct coded-bit positions: the
    // decoder must report DoubleDetected and must not "repair" the
    // word into a third value (SEC-DED's no-miscorrection property).
    Rng rng(3);
    const std::uint64_t data = rng.next();
    const std::uint8_t check = dram::eccEncodeWord(data);
    std::size_t pairs = 0;
    for (std::size_t p = 0; p < dram::kEccCodedBits; ++p) {
        for (std::size_t q = p + 1; q < dram::kEccCodedBits; ++q) {
            std::uint64_t bad_data = data;
            std::uint8_t bad_check = check;
            for (std::size_t bit : {p, q}) {
                if (bit < dram::kEccDataBits)
                    bad_data ^= 1ull << bit;
                else
                    bad_check ^= static_cast<std::uint8_t>(
                        1u << (bit - dram::kEccDataBits));
            }
            const dram::EccDecode d =
                dram::eccDecodeWord(bad_data, bad_check);
            ASSERT_EQ(d.status, dram::EccStatus::DoubleDetected)
                << "pair (" << p << "," << q << ")";
            // Pass-through, not a miscorrection.
            ASSERT_EQ(d.data, bad_data);
            ASSERT_EQ(d.check, bad_check);
            ++pairs;
        }
    }
    EXPECT_EQ(pairs, dram::kEccCodedBits *
                         (dram::kEccCodedBits - 1) / 2); // 2556
}

TEST(Ecc, SeededRoundTripFuzz)
{
    Rng rng(0xF022);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t data = rng.next();
        const std::uint8_t check = dram::eccEncodeWord(data);
        const std::size_t flips = rng.below(3); // 0, 1 or 2
        std::uint64_t bad_data = data;
        std::uint8_t bad_check = check;
        std::size_t p1 = 0, p2 = 0;
        if (flips >= 1) {
            p1 = rng.below(dram::kEccCodedBits);
            if (p1 < dram::kEccDataBits)
                bad_data ^= 1ull << p1;
            else
                bad_check ^= static_cast<std::uint8_t>(
                    1u << (p1 - dram::kEccDataBits));
        }
        if (flips == 2) {
            do {
                p2 = rng.below(dram::kEccCodedBits);
            } while (p2 == p1);
            if (p2 < dram::kEccDataBits)
                bad_data ^= 1ull << p2;
            else
                bad_check ^= static_cast<std::uint8_t>(
                    1u << (p2 - dram::kEccDataBits));
        }
        const dram::EccDecode d =
            dram::eccDecodeWord(bad_data, bad_check);
        switch (flips) {
          case 0:
            ASSERT_EQ(d.status, dram::EccStatus::Ok);
            ASSERT_EQ(d.data, data);
            break;
          case 1:
            ASSERT_EQ(d.status, dram::EccStatus::CorrectedSingle);
            ASSERT_EQ(d.data, data);
            ASSERT_EQ(d.check, check);
            break;
          default:
            ASSERT_EQ(d.status, dram::EccStatus::DoubleDetected);
            break;
        }
    }
}

// -------------------------------------------------------- Ecc sideband

std::vector<float>
randomFloats(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

/** Flip bit @p bit of float @p idx in place. */
void
flipFloatBit(float *data, std::size_t idx, unsigned bit)
{
    std::uint32_t u;
    std::memcpy(&u, &data[idx], sizeof(u));
    u ^= 1u << bit;
    std::memcpy(&data[idx], &u, sizeof(u));
}

TEST(EccArray, CorrectsFlippedFloatBitsIncludingOddTail)
{
    for (std::size_t n : {8u, 7u, 1u}) { // even, odd, single
        std::vector<float> buf = randomFloats(n, 11);
        const std::vector<float> orig = buf;
        dram::EccProtectedArray ecc(n);
        EXPECT_EQ(ecc.numWords(), (n + 1) / 2);
        ecc.encodeAll(buf.data());

        flipFloatBit(buf.data(), n - 1, 30); // exponent bit
        flipFloatBit(buf.data(), 0, 3);      // mantissa bit
        const auto rep = ecc.correctAll(buf.data());
        EXPECT_EQ(rep.scanned, ecc.numWords());
        // n == 1: both flips share the single word -> double-bit.
        EXPECT_EQ(rep.corrected, n == 1 ? 0u : 2u);
        EXPECT_EQ(rep.uncorrectable, n == 1 ? 1u : 0u);
        if (n > 1) {
            EXPECT_EQ(0, std::memcmp(buf.data(), orig.data(),
                                     n * sizeof(float)));
            // A second pass finds nothing left to fix.
            const auto again = ecc.correctAll(buf.data());
            EXPECT_EQ(again.corrected, 0u);
            EXPECT_EQ(again.uncorrectable, 0u);
        }
    }
}

TEST(EccArray, DoubleBitWordDetectedNotRepaired)
{
    std::vector<float> buf = randomFloats(4, 12);
    dram::EccProtectedArray ecc(buf.size());
    ecc.encodeAll(buf.data());
    // Two flips in word 0 (floats 0 and 1 share the coded word).
    flipFloatBit(buf.data(), 0, 5);
    flipFloatBit(buf.data(), 1, 9);
    const std::vector<float> damaged = buf;
    const auto rep = ecc.correctAll(buf.data());
    EXPECT_EQ(rep.corrected, 0u);
    EXPECT_EQ(rep.uncorrectable, 1u);
    EXPECT_EQ(0, std::memcmp(buf.data(), damaged.data(),
                             buf.size() * sizeof(float)));
}

TEST(EccArray, ScrubCursorWrapsDeterministically)
{
    const std::size_t n = 20; // 10 words
    std::vector<float> buf = randomFloats(n, 13);
    const std::vector<float> orig = buf;
    dram::EccProtectedArray ecc(n);
    ecc.encodeAll(buf.data());

    // Corrupt one bit in the last word; a 4-word sweep starting at
    // the cursor (0) misses it twice, then the wrap reaches it.
    flipFloatBit(buf.data(), n - 1, 17);
    auto r1 = ecc.scrub(buf.data(), 4); // words 0..3
    auto r2 = ecc.scrub(buf.data(), 4); // words 4..7
    EXPECT_EQ(r1.corrected + r2.corrected, 0u);
    auto r3 = ecc.scrub(buf.data(), 4); // words 8, 9, wrap to 0, 1
    EXPECT_EQ(r3.corrected, 1u);
    EXPECT_EQ(0, std::memcmp(buf.data(), orig.data(),
                             n * sizeof(float)));
    // Sweeping more words than exist clamps to one full pass.
    auto r4 = ecc.scrub(buf.data(), 1000);
    EXPECT_EQ(r4.scanned, ecc.numWords());
}

// ------------------------------------------- coded injection surface

TEST(FaultInjectorCoded, FlipsLandOnDataAndCheckBits)
{
    const std::size_t n = 4096;
    std::vector<float> buf = randomFloats(n, 21);
    const std::vector<float> orig = buf;
    dram::EccProtectedArray ecc(n);
    ecc.encodeAll(buf.data());
    std::vector<std::uint8_t> orig_check(
        ecc.checkBits(), ecc.checkBits() + ecc.numWords());

    sim::FaultConfig cfg;
    cfg.seed = 99;
    cfg.bitFlipsPerMbit = 2000.0;
    cfg.targetMasterWeights = true;
    sim::FaultInjector inj(cfg);
    const std::size_t flipped =
        inj.corruptCoded(buf.data(), n, ecc.checkBits(),
                         ecc.numWords(), sim::FaultSite::MasterWeights);
    ASSERT_GT(flipped, 0u);
    EXPECT_EQ(static_cast<double>(flipped),
              inj.stats().get("faults.bitsFlipped"));
    // With ~8/72 of the surface in check bits, a few hundred flips
    // must hit both regions.
    EXPECT_GT(inj.stats().get("faults.checkBitsFlipped"), 0.0);
    EXPECT_NE(0, std::memcmp(buf.data(), orig.data(),
                             n * sizeof(float)));
    EXPECT_NE(0, std::memcmp(ecc.checkBits(), orig_check.data(),
                             ecc.numWords()));

    // Every flip is correctable or detectable: decode-correct and
    // require corrected + uncorrectable to cover all faulty words.
    const auto rep = ecc.correctAll(buf.data());
    EXPECT_GT(rep.corrected, 0u);
    // All single-bit words are now repaired; a second pass only sees
    // the double-bit (uncorrectable) words again.
    const auto again = ecc.correctAll(buf.data());
    EXPECT_EQ(again.corrected, 0u);
    EXPECT_EQ(again.uncorrectable, rep.uncorrectable);
}

TEST(FaultInjectorCoded, DeterministicAcrossThreadCounts)
{
    const std::size_t n = 513; // odd tail word
    auto runOnce = [n](int threads) {
        ThreadPool::instance().setNumThreads(threads);
        std::vector<float> buf = randomFloats(n, 31);
        dram::EccProtectedArray ecc(n);
        ecc.encodeAll(buf.data());
        sim::FaultConfig cfg;
        cfg.seed = 7;
        cfg.bitFlipsPerMbit = 5000.0;
        cfg.burstLength = 3; // bursts straddle word boundaries
        cfg.targetMasterWeights = true;
        sim::FaultInjector inj(cfg);
        for (int pass = 0; pass < 4; ++pass)
            inj.corruptCoded(buf.data(), n, ecc.checkBits(),
                             ecc.numWords(),
                             sim::FaultSite::MasterWeights);
        std::vector<std::uint8_t> image(n * sizeof(float));
        std::memcpy(image.data(), buf.data(), image.size());
        image.insert(image.end(), ecc.checkBits(),
                     ecc.checkBits() + ecc.numWords());
        return image;
    };
    const auto serial = runOnce(1);
    const auto parallel = runOnce(4);
    ThreadPool::instance().setNumThreads(0); // restore default
    EXPECT_EQ(serial, parallel);
}

TEST(FaultInjectorCoded, ZeroRateFlipsNothing)
{
    const std::size_t n = 64;
    std::vector<float> buf = randomFloats(n, 41);
    const std::vector<float> orig = buf;
    dram::EccProtectedArray ecc(n);
    ecc.encodeAll(buf.data());
    sim::FaultConfig cfg;
    cfg.bitFlipsPerMbit = 0.0;
    cfg.targetMasterWeights = true;
    sim::FaultInjector inj(cfg);
    EXPECT_EQ(inj.corruptCoded(buf.data(), n, ecc.checkBits(),
                               ecc.numWords(),
                               sim::FaultSite::MasterWeights),
              0u);
    EXPECT_EQ(0, std::memcmp(buf.data(), orig.data(),
                             n * sizeof(float)));
}

// ------------------------------------------------------- ABFT (FP32)

Tensor
randomTensor(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t({r, c});
    for (std::size_t i = 0; i < t.numel(); ++i)
        t.data()[i] = static_cast<float>(rng.gaussian());
    return t;
}

TEST(Abft, CleanGemmBitwiseIdenticalToMatmul)
{
    const Tensor a = randomTensor(17, 33, 51);
    const Tensor b = randomTensor(33, 9, 52);
    const Tensor plain = matmul(a, b);
    abft::AbftConfig cfg;
    abft::AbftReport rep;
    const Tensor checked = abft::abftMatmul(a, b, cfg, &rep);
    ASSERT_EQ(checked.shape(), plain.shape());
    EXPECT_EQ(0, std::memcmp(checked.data(), plain.data(),
                             plain.numel() * sizeof(float)));
    EXPECT_EQ(rep.suspectRows, 0u);
    EXPECT_EQ(rep.retries, 0u);
    EXPECT_FALSE(rep.corrected);
    EXPECT_FALSE(rep.escalated);
}

TEST(Abft, TransientCorruptionRepairedToBitwiseCleanProduct)
{
    const Tensor a = randomTensor(12, 40, 53);
    const Tensor b = randomTensor(40, 14, 54);
    const Tensor plain = matmul(a, b);
    StatGroup stats;
    abft::AbftConfig cfg;
    cfg.stats = &stats;
    int shots = 1; // one-shot: fault on first pass only
    cfg.corruptOutput = [&shots](Tensor &c) {
        if (shots-- > 0)
            flipFloatBit(c.data(), 5, 28); // exponent-region flip
    };
    abft::AbftReport rep;
    const Tensor checked = abft::abftMatmul(a, b, cfg, &rep);
    EXPECT_TRUE(rep.corrected);
    EXPECT_FALSE(rep.escalated);
    EXPECT_EQ(rep.retries, 1u);
    EXPECT_EQ(0, std::memcmp(checked.data(), plain.data(),
                             plain.numel() * sizeof(float)));
    EXPECT_EQ(stats.get("abft.corrected"), 1.0);
    EXPECT_EQ(stats.get("abft.escalations"), 0.0);
}

TEST(Abft, PersistentCorruptionEscalates)
{
    const Tensor a = randomTensor(10, 16, 55);
    const Tensor b = randomTensor(16, 10, 56);
    StatGroup stats;
    abft::AbftConfig cfg;
    cfg.stats = &stats;
    cfg.corruptRetries = true; // stuck-at accumulator model
    cfg.corruptOutput = [](Tensor &c) {
        flipFloatBit(c.data(), 3, 30);
    };
    abft::AbftReport rep;
    (void)abft::abftMatmul(a, b, cfg, &rep);
    EXPECT_TRUE(rep.escalated);
    EXPECT_FALSE(rep.corrected);
    EXPECT_EQ(stats.get("abft.escalations"), 1.0);
}

TEST(Abft, ScopeReroutesMatmulAndSuspendsDuringVerify)
{
    const Tensor a = randomTensor(6, 8, 57);
    const Tensor b = randomTensor(8, 6, 58);
    StatGroup stats;
    abft::AbftConfig cfg;
    cfg.stats = &stats;
    {
        abft::AbftScope scope(cfg);
        ASSERT_EQ(abft::AbftScope::active(), &cfg);
        (void)matmul(a, b); // rerouted through abftMatmul
        (void)matmul(a, b);
    }
    EXPECT_EQ(abft::AbftScope::active(), nullptr);
    // Two GEMMs verified, no recursion blow-up, no false alarms.
    EXPECT_EQ(stats.get("abft.gemms"), 2.0);
    EXPECT_EQ(stats.get("abft.mismatches"), 0.0);
}

TEST(Abft, NoFalsePositivesOnCleanFp32Gemms)
{
    StatGroup stats;
    abft::AbftConfig cfg;
    cfg.stats = &stats;
    Rng shapes(59);
    for (int i = 0; i < 200; ++i) {
        const std::size_t m = 1 + shapes.below(24);
        const std::size_t k = 1 + shapes.below(96);
        const std::size_t n = 1 + shapes.below(24);
        const Tensor a = randomTensor(m, k, 60 + i);
        const Tensor b = randomTensor(k, n, 300 + i);
        (void)abft::abftMatmul(a, b, cfg);
    }
    EXPECT_EQ(stats.get("abft.mismatches"), 0.0);
    EXPECT_EQ(stats.get("abft.gemms"), 200.0);
}

// -------------------------------------------------- ABFT (quantized)

TEST(AbftQuantized, NoFalsePositivesAtEveryHqtWidth)
{
    // 1k clean quantized GEMMs spread over the HQT operand widths:
    // the quantized-domain checksums must absorb only FP rounding, so
    // the auto tolerance holds from 4-bit to 16-bit operands.
    StatGroup stats;
    Rng shapes(61);
    int gemms = 0;
    for (const int bits : {4, 8, 12, 16}) {
        for (int i = 0; i < 250; ++i) {
            const std::size_t m = 1 + shapes.below(12);
            const std::size_t k = 1 + shapes.below(80);
            const std::size_t n = 1 + shapes.below(12);
            arch::QuantizedGemmOptions opt;
            opt.bits = bits;
            opt.blockK = 32;
            opt.abft.verify = true;
            opt.abft.stats = &stats;
            const Tensor a = randomTensor(m, k, 1000 + gemms);
            const Tensor b = randomTensor(k, n, 9000 + gemms);
            abft::AbftReport rep;
            (void)arch::quantizedMatmul(a, b, opt, &rep);
            ASSERT_EQ(rep.suspectRows, 0u)
                << "bits=" << bits << " gemm=" << i;
            ASSERT_EQ(rep.suspectCols, 0u)
                << "bits=" << bits << " gemm=" << i;
            ++gemms;
        }
    }
    EXPECT_EQ(stats.get("abft.gemms"), 1000.0);
    EXPECT_EQ(stats.get("abft.mismatches"), 0.0);
}

TEST(AbftQuantized, VerificationDoesNotPerturbCleanProduct)
{
    const Tensor a = randomTensor(9, 48, 71);
    const Tensor b = randomTensor(48, 7, 72);
    arch::QuantizedGemmOptions plain_opt;
    const Tensor plain = arch::quantizedMatmul(a, b, plain_opt);
    arch::QuantizedGemmOptions abft_opt;
    abft_opt.abft.verify = true;
    const Tensor checked = arch::quantizedMatmul(a, b, abft_opt);
    EXPECT_EQ(0, std::memcmp(checked.data(), plain.data(),
                             plain.numel() * sizeof(float)));
}

TEST(AbftQuantized, InjectedAccumulatorFaultCorrected)
{
    const Tensor a = randomTensor(16, 64, 73);
    const Tensor b = randomTensor(64, 16, 74);
    arch::QuantizedGemmOptions clean_opt;
    const Tensor clean = arch::quantizedMatmul(a, b, clean_opt);

    sim::FaultConfig fcfg;
    fcfg.seed = 77;
    fcfg.bitFlipsPerMbit = 500.0; // ~4 flips over the 16x16 tile
    fcfg.targetAccumulators = true;
    sim::FaultInjector inj(fcfg);
    StatGroup stats;
    arch::QuantizedGemmOptions opt;
    opt.abft.verify = true;
    opt.abft.stats = &stats;
    opt.abft.faults = &inj; // retries run clean (transient model)
    abft::AbftReport rep;
    const Tensor fixed = arch::quantizedMatmul(a, b, opt, &rep);
    ASSERT_GT(inj.stats().get("faults.bitsFlipped"), 0.0);
    EXPECT_TRUE(rep.corrected);
    EXPECT_FALSE(rep.escalated);
    EXPECT_EQ(0, std::memcmp(fixed.data(), clean.data(),
                             clean.numel() * sizeof(float)));
    EXPECT_EQ(stats.get("abft.corrected"), 1.0);
}

// --------------------------------------- checkpoint diagnostics

TEST(CheckpointDiagnostics, CorruptTensorNamedInWarnLog)
{
    const std::string path =
        ::testing::TempDir() + "cq_ecc_abft_ckpt.bin";
    nn::guard::TrainerSnapshot snap;
    snap.step = 3;
    snap.optimizerStep = 3;
    Tensor t({4, 4});
    for (std::size_t i = 0; i < t.numel(); ++i)
        t.data()[i] = static_cast<float>(i);
    snap.masters = {t};
    snap.m = {t};
    snap.v = {t};
    ASSERT_TRUE(nn::guard::writeCheckpoint(path, snap));

    // Flip one payload byte inside the last tensor record (group v).
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -12, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -12, SEEK_END);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);

    ::testing::internal::CaptureStderr();
    nn::guard::TrainerSnapshot loaded;
    const auto result = nn::guard::readCheckpoint(path, loaded);
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(result, nn::guard::CheckpointLoadResult::Corrupt);
    EXPECT_NE(log.find("v[0]"), std::string::npos) << log;
    EXPECT_NE(log.find("CRC mismatch"), std::string::npos) << log;
    EXPECT_NE(log.find("offset"), std::string::npos) << log;
    std::remove(path.c_str());
}

TEST(CheckpointDiagnostics, TruncationNamedInWarnLog)
{
    const std::string path =
        ::testing::TempDir() + "cq_ecc_abft_trunc.bin";
    nn::guard::TrainerSnapshot snap;
    snap.step = 1;
    snap.optimizerStep = 1;
    Tensor t({8});
    snap.masters = {t};
    snap.m = {t};
    snap.v = {t};
    ASSERT_TRUE(nn::guard::writeCheckpoint(path, snap));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 10), 0);

    ::testing::internal::CaptureStderr();
    nn::guard::TrainerSnapshot loaded;
    const auto result = nn::guard::readCheckpoint(path, loaded);
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(result, nn::guard::CheckpointLoadResult::Corrupt);
    EXPECT_NE(log.find("v[0]"), std::string::npos) << log;
    EXPECT_NE(log.find("truncated"), std::string::npos) << log;
    std::remove(path.c_str());
}

// -------------------------------------------------- trainer E2E

nn::Network
makeMlp(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 16, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 16, 2, rng));
    return net;
}

struct TrainOutcome
{
    std::vector<float> finalParams;
    StatGroup stats;
    std::size_t rollbacks = 0;
};

TrainOutcome
trainEcc(double rate, bool ecc, int steps)
{
    nn::SpiralDataset data(2, 0.1, 5);
    nn::Network net = makeMlp(6);
    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    cfg.resilience.enabled = true;
    cfg.resilience.ecc.enabled = ecc;
    cfg.resilience.ecc.scrubWordsPerStep = 8;
    cfg.resilience.abft.enabled = true;
    nn::QuantTrainer trainer(net, cfg);
    sim::FaultConfig fcfg;
    fcfg.seed = 404;
    fcfg.bitFlipsPerMbit = rate;
    fcfg.burstLength = 1;
    fcfg.targetMasterWeights = true;
    sim::FaultInjector inj(fcfg);
    if (rate > 0.0)
        trainer.setFaultInjector(&inj);
    for (int i = 0; i < steps; ++i) {
        const auto b = data.sample(32);
        trainer.stepClassification(b.inputs, b.labels);
    }
    TrainOutcome out;
    for (nn::Param *p : net.params())
        out.finalParams.insert(out.finalParams.end(),
                               p->value.data(),
                               p->value.data() + p->value.numel());
    out.stats = trainer.resilienceStats();
    out.rollbacks = trainer.rollbackCount();
    return out;
}

TEST(EccTrainerE2E, SingleBitFaultedRunMatchesFaultFreeBitwise)
{
    // With ECC on and only single-bit upsets, every flip is repaired
    // before anything reads it: the faulted run must be bit-for-bit
    // the fault-free run, with zero rollbacks.
    const TrainOutcome clean = trainEcc(0.0, true, 40);
    const TrainOutcome faulted = trainEcc(150.0, true, 40);
    ASSERT_GT(faulted.stats.get("ecc.corrected"), 0.0);
    ASSERT_EQ(faulted.stats.get("ecc.uncorrectable"), 0.0)
        << "seed drew a same-word double flip; pick another seed";
    EXPECT_EQ(faulted.rollbacks, 0u);
    ASSERT_EQ(clean.finalParams.size(), faulted.finalParams.size());
    EXPECT_EQ(0, std::memcmp(clean.finalParams.data(),
                             faulted.finalParams.data(),
                             clean.finalParams.size() *
                                 sizeof(float)));
    // The same faults without ECC drift the run away.
    const TrainOutcome bare = trainEcc(150.0, false, 40);
    EXPECT_NE(0, std::memcmp(clean.finalParams.data(),
                             bare.finalParams.data(),
                             clean.finalParams.size() *
                                 sizeof(float)));
}

TEST(EccTrainerE2E, DeterministicAcrossThreadCounts)
{
    ThreadPool::instance().setNumThreads(1);
    const TrainOutcome serial = trainEcc(150.0, true, 25);
    ThreadPool::instance().setNumThreads(4);
    const TrainOutcome parallel = trainEcc(150.0, true, 25);
    ThreadPool::instance().setNumThreads(0); // restore default
    ASSERT_EQ(serial.finalParams.size(), parallel.finalParams.size());
    EXPECT_EQ(0, std::memcmp(serial.finalParams.data(),
                             parallel.finalParams.data(),
                             serial.finalParams.size() *
                                 sizeof(float)));
    EXPECT_EQ(serial.stats.get("ecc.corrected"),
              parallel.stats.get("ecc.corrected"));
}

} // namespace
} // namespace cq
