/**
 * @file
 * Tests for the failpoint framework (common/failpoint.h) and the
 * graceful-degradation policies built on it: spec parsing, trigger
 * windows (one-shot, every-Nth, byte-offset), counter persistence
 * across disarm, the injectable I/O seam, the telemetry sink's
 * degraded drop mode, the durable-write ladder's typed results, the
 * checkpoint store's ENOSPC prune-and-retry, the serve report
 * writer's retry/dead-letter path, and the dist trainer's storage
 * eviction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/fileutil.h"
#include "dist/dist_harness.h"
#include "nn/guard/checkpoint.h"
#include "nn/guard/ckpt_store.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "serve/report.h"
#include "tensor/tensor.h"

namespace cq {
namespace {

using nn::guard::CheckpointLoadResult;
using nn::guard::CheckpointStore;
using nn::guard::CheckpointStoreConfig;
using nn::guard::CheckpointWriteOptions;
using nn::guard::CheckpointWriteResult;
using nn::guard::TrainerSnapshot;
using nn::guard::readCheckpoint;
using nn::guard::writeCheckpointEx;

/** A per-test directory under gtest's temp root, wiped first. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    for (const std::string &f : listDir(dir))
        std::remove((dir + "/" + f).c_str());
    ::rmdir(dir.c_str());
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

/** A small but non-trivial snapshot with a recognizable pattern. */
TrainerSnapshot
makeSnap(std::uint64_t step)
{
    TrainerSnapshot snap;
    snap.step = step;
    snap.optimizerStep = step;
    for (int t = 0; t < 2; ++t) {
        Tensor w({4, 3}), m({4, 3}), v({4, 3});
        for (std::size_t i = 0; i < w.numel(); ++i) {
            w.data()[i] = static_cast<float>(step * 100 + t * 10) +
                          0.25f * static_cast<float>(i);
            m.data()[i] = -w.data()[i];
            v.data()[i] = 0.5f * w.data()[i];
        }
        snap.masters.push_back(w);
        snap.m.push_back(m);
        snap.v.push_back(v);
    }
    return snap;
}

double
counterValue(const std::string &name)
{
    return obs::MetricRegistry::instance().counter(name).value();
}

/** Every test starts and ends with a clean registry — failpoints are
 *  process-global, and a leaked arm would poison later tests. */
class Failpoint : public ::testing::Test
{
  protected:
    void SetUp() override { fp::Registry::instance().reset(); }
    void TearDown() override { fp::Registry::instance().reset(); }
};

// ----------------------------------------------------------- parsing

TEST_F(Failpoint, ParseActionKinds)
{
    fp::SiteConfig c;
    ASSERT_TRUE(fp::parseAction("fail", c));
    EXPECT_EQ(c.kind, fp::ActionKind::Fail);
    EXPECT_EQ(c.err, 0); // evaluate() substitutes the default EIO

    ASSERT_TRUE(fp::parseAction("enospc", c));
    EXPECT_EQ(c.kind, fp::ActionKind::Fail);
    EXPECT_EQ(c.err, ENOSPC);

    ASSERT_TRUE(fp::parseAction("eio", c));
    EXPECT_EQ(c.err, EIO);

    ASSERT_TRUE(fp::parseAction("short", c));
    EXPECT_EQ(c.kind, fp::ActionKind::ShortWrite);

    ASSERT_TRUE(fp::parseAction("delay,us=250", c));
    EXPECT_EQ(c.kind, fp::ActionKind::Delay);
    EXPECT_EQ(c.delayMicros, 250u);

    ASSERT_TRUE(fp::parseAction("alloc", c));
    EXPECT_EQ(c.kind, fp::ActionKind::AllocFail);

    ASSERT_TRUE(fp::parseAction("off", c));
    EXPECT_EQ(c.kind, fp::ActionKind::Off);
}

TEST_F(Failpoint, ParseActionTriggerKeys)
{
    fp::SiteConfig c;
    ASSERT_TRUE(fp::parseAction("fail,once=1", c));
    EXPECT_EQ(c.limit, 1u);

    ASSERT_TRUE(
        fp::parseAction("fail,after=3,every=2,limit=5,seed=99", c));
    EXPECT_EQ(c.after, 3u);
    EXPECT_EQ(c.every, 2u);
    EXPECT_EQ(c.limit, 5u);
    EXPECT_EQ(c.seed, 99u);

    ASSERT_TRUE(fp::parseAction("short,after_bytes=4096", c));
    EXPECT_EQ(c.afterBytes, 4096u);

    ASSERT_TRUE(fp::parseAction("fail,prob=0.25", c));
    EXPECT_DOUBLE_EQ(c.prob, 0.25);
}

TEST_F(Failpoint, ParseActionRejectsMalformedSpecs)
{
    fp::SiteConfig c;
    std::string err;
    EXPECT_FALSE(fp::parseAction("", c, &err));
    EXPECT_FALSE(fp::parseAction("explode", c, &err));
    EXPECT_NE(err.find("explode"), std::string::npos);
    EXPECT_FALSE(fp::parseAction("fail,once=2", c, &err));
    EXPECT_FALSE(fp::parseAction("fail,prob=1.5", c, &err));
    EXPECT_FALSE(fp::parseAction("fail,bogus=1", c, &err));
    EXPECT_FALSE(fp::parseAction("fail,=1", c, &err));
}

TEST_F(Failpoint, ConfigureSpecArmsMultipleSites)
{
    auto &reg = fp::Registry::instance();
    std::string err;
    ASSERT_TRUE(reg.configure(
        "ckpt.body.write=enospc,once=1;obs.trace.open=fail", &err))
        << err;
    const auto armed = reg.armedSites();
    EXPECT_EQ(armed.size(), 2u);
    EXPECT_TRUE(reg.active());

    // A bad spec reports which clause failed and arms nothing new.
    EXPECT_FALSE(reg.configure("ckpt.body.write=explode", &err));
    EXPECT_NE(err.find("explode"), std::string::npos);

    ASSERT_TRUE(reg.configure("obs.trace.open=off", &err)) << err;
    EXPECT_EQ(reg.armedSites().size(), 1u);
}

// ---------------------------------------------------------- triggers

TEST_F(Failpoint, OnceFiresExactlyOnce)
{
    auto &reg = fp::Registry::instance();
    ASSERT_TRUE(reg.configureOne("t.once", "eio,once=1"));
    EXPECT_TRUE(static_cast<bool>(reg.evaluate("t.once")));
    EXPECT_FALSE(static_cast<bool>(reg.evaluate("t.once")));
    EXPECT_FALSE(static_cast<bool>(reg.evaluate("t.once")));
    EXPECT_EQ(reg.site("t.once").fires(), 1u);
    EXPECT_EQ(reg.site("t.once").evals(), 3u);
}

TEST_F(Failpoint, AfterAndEveryWindowTheIndex)
{
    auto &reg = fp::Registry::instance();
    ASSERT_TRUE(reg.configureOne("t.win", "fail,after=2,every=3"));
    std::string pattern;
    for (int i = 0; i < 9; ++i)
        pattern += reg.evaluate("t.win") ? 'F' : '.';
    // Indices 0,1 skipped; fires at 2, 5, 8.
    EXPECT_EQ(pattern, "..F..F..F");
}

TEST_F(Failpoint, ByteOffsetSplitsTheCrossingCall)
{
    auto &reg = fp::Registry::instance();
    ASSERT_TRUE(reg.configureOne("t.bytes", "short,after_bytes=10"));
    // 8 bytes: wholly below the offset — no fire.
    EXPECT_FALSE(static_cast<bool>(reg.evaluate("t.bytes", 8)));
    // Next 8 bytes cross offset 10: accept exactly 2, then fail.
    const auto o = reg.evaluate("t.bytes", 8);
    ASSERT_TRUE(static_cast<bool>(o));
    EXPECT_EQ(o.kind, fp::ActionKind::ShortWrite);
    EXPECT_EQ(o.acceptBytes, 2u);
    EXPECT_EQ(o.err, ENOSPC);
    // The disk stays full: later calls fail accepting nothing.
    const auto o2 = reg.evaluate("t.bytes", 8);
    ASSERT_TRUE(static_cast<bool>(o2));
    EXPECT_EQ(o2.acceptBytes, 0u);
}

TEST_F(Failpoint, ProbabilityIsSeedDeterministic)
{
    auto &reg = fp::Registry::instance();
    const auto pattern = [&](const std::string &action) {
        EXPECT_TRUE(reg.configureOne("t.prob", action));
        std::string p;
        for (int i = 0; i < 64; ++i)
            p += reg.evaluate("t.prob") ? 'F' : '.';
        return p;
    };
    const std::string a = pattern("fail,prob=0.5,seed=7");
    const std::string b = pattern("fail,prob=0.5,seed=7");
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find('F'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
    EXPECT_NE(pattern("fail,prob=0.5,seed=8"), a);
}

TEST_F(Failpoint, DisarmKeepsCountersRearmResetsWindow)
{
    auto &reg = fp::Registry::instance();
    ASSERT_TRUE(reg.configureOne("t.keep", "fail,once=1"));
    EXPECT_TRUE(static_cast<bool>(reg.evaluate("t.keep")));

    // The sweep disarms before checking invariants, then reads
    // fires() — disarm must not erase the evidence.
    reg.disarmAll();
    EXPECT_EQ(reg.site("t.keep").fires(), 1u);

    // Re-arming starts a fresh one-shot window (the cumulative
    // counter keeps accumulating across windows).
    ASSERT_TRUE(reg.configureOne("t.keep", "fail,once=1"));
    EXPECT_TRUE(static_cast<bool>(reg.evaluate("t.keep")));
    EXPECT_EQ(reg.site("t.keep").fires(), 2u);

    reg.reset();
    EXPECT_EQ(reg.site("t.keep").fires(), 0u);
    EXPECT_EQ(reg.site("t.keep").evals(), 0u);
}

TEST_F(Failpoint, TraceRecordsHitSites)
{
    auto &reg = fp::Registry::instance();
    reg.setTrace(true);
    reg.evaluate("t.traced");
    const auto hits = reg.hitSites();
    EXPECT_NE(std::find(hits.begin(), hits.end(), "t.traced"),
              hits.end());
    EXPECT_FALSE(fp::Registry::isDeclared("t.traced"));
    EXPECT_TRUE(fp::Registry::isDeclared("ckpt.body.write"));
    EXPECT_GE(fp::Registry::declaredSites().size(), 30u);
}

// --------------------------------------------------------- I/O seam

TEST_F(Failpoint, FwriteFpShortWriteLandsThePrefix)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_io");
    const std::string path = dir + "/short.bin";
    ASSERT_TRUE(reg.configureOne("t.io.write", "short,after_bytes=5"));

    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char payload[] = "0123456789";
    const std::size_t n = io::fwriteFp("t.io.write", payload, 10, f);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(errno, ENOSPC);
    std::fclose(f);
    // The accepted prefix genuinely landed in the file.
    EXPECT_EQ(fileSize(path), 5);
}

TEST_F(Failpoint, IoWrappersFailWithConfiguredErrno)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_io2");
    ASSERT_TRUE(reg.configureOne("t.io.open", "enospc,once=1"));
    errno = 0;
    EXPECT_EQ(io::fopenFp("t.io.open", dir + "/x", "wb"), nullptr);
    EXPECT_EQ(errno, ENOSPC);
    // The window is spent: the next open succeeds.
    std::FILE *f = io::fopenFp("t.io.open", dir + "/x", "wb");
    ASSERT_NE(f, nullptr);

    ASSERT_TRUE(reg.configureOne("t.io.close", "eio,once=1"));
    EXPECT_EQ(io::fcloseFp("t.io.close", f), EOF);
    EXPECT_EQ(errno, EIO);
    // fcloseFp closed the real FILE even while failing — reopening
    // and closing cleanly proves no descriptor leaked.
    f = std::fopen((dir + "/x").c_str(), "rb");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(std::fclose(f), 0);
}

// ----------------------------------------------- telemetry degraded

TEST_F(Failpoint, TelemetrySinkDegradesInsteadOfFailing)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_telemetry");
    const double before = counterValue("obs.write_errors");

    ASSERT_TRUE(
        reg.configureOne("obs.telemetry.write", "enospc,once=1"));
    obs::JsonlTelemetrySink sink(dir + "/telemetry.jsonl");
    ASSERT_TRUE(sink.ok());

    obs::StepTelemetry rec;
    rec.step = 1;
    sink.onStep(rec); // write fails -> degraded, record dropped
    rec.step = 2;
    sink.onStep(rec); // degraded: dropped without touching the file
    rec.step = 3;
    sink.onStep(rec);

    EXPECT_TRUE(sink.degraded());
    EXPECT_EQ(sink.recordsWritten(), 0u);
    EXPECT_EQ(sink.droppedRecords(), 3u);
    EXPECT_EQ(counterValue("obs.write_errors"), before + 1.0);
}

TEST_F(Failpoint, TelemetrySinkOpenFailureDegradesImmediately)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_telemetry2");
    ASSERT_TRUE(reg.configureOne("obs.telemetry.open", "fail,once=1"));
    obs::JsonlTelemetrySink sink(dir + "/telemetry.jsonl");
    EXPECT_FALSE(sink.ok());
    EXPECT_TRUE(sink.degraded());
    obs::StepTelemetry rec;
    sink.onStep(rec); // must not crash
    EXPECT_EQ(sink.droppedRecords(), 1u);
}

// ------------------------------------------- durable write ladder

TEST_F(Failpoint, WriteLadderStagesReturnTypedResults)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_ladder");
    const TrainerSnapshot snap = makeSnap(1);
    const std::string path = dir + "/ckpt.bin";
    const auto stage = [&](const char *site, const char *action) {
        reg.reset();
        EXPECT_TRUE(reg.configureOne(site, action)) << site;
        return writeCheckpointEx(path, snap);
    };

    EXPECT_EQ(stage("ckpt.body.open", "fail,once=1"),
              CheckpointWriteResult::OpenFailed);
    EXPECT_EQ(stage("ckpt.body.open", "fail,once=1,errno=enoent"),
              CheckpointWriteResult::DirMissing);
    EXPECT_EQ(stage("ckpt.body.write", "eio,once=1"),
              CheckpointWriteResult::WriteFailed);
    EXPECT_EQ(stage("ckpt.body.write", "enospc,once=1"),
              CheckpointWriteResult::NoSpace);
    EXPECT_EQ(stage("ckpt.body.fsync", "eio,once=1"),
              CheckpointWriteResult::FsyncFailed);
    EXPECT_EQ(stage("ckpt.body.fsync", "enospc,once=1"),
              CheckpointWriteResult::NoSpace);
    EXPECT_EQ(stage("ckpt.body.close", "enospc,once=1"),
              CheckpointWriteResult::NoSpace);
    EXPECT_EQ(stage("ckpt.body.rename", "eio,once=1"),
              CheckpointWriteResult::RenameFailed);
    EXPECT_EQ(stage("ckpt.body.rename", "fail,once=1,errno=enoent"),
              CheckpointWriteResult::DirMissing);

    // None of the pre-publish stages left a committed file behind...
    TrainerSnapshot out;
    EXPECT_NE(readCheckpoint(path, out), CheckpointLoadResult::Ok);

    // ...while a dirfsync failure happens *after* the rename: the
    // data is synced and the file published, only the directory
    // entry's durability is in doubt.
    EXPECT_EQ(stage("ckpt.body.dirfsync", "eio,once=1"),
              CheckpointWriteResult::DirFsyncFailed);
    EXPECT_EQ(readCheckpoint(path, out), CheckpointLoadResult::Ok);

    // With the registry clean the same write commits.
    reg.reset();
    EXPECT_EQ(writeCheckpointEx(path, snap),
              CheckpointWriteResult::Ok);
    EXPECT_EQ(readCheckpoint(path, out), CheckpointLoadResult::Ok);
}

TEST_F(Failpoint, ReadDistinguishesMissingFromUnreadable)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_read");
    const std::string path = dir + "/ckpt.bin";
    TrainerSnapshot out;
    EXPECT_EQ(readCheckpoint(path, out),
              CheckpointLoadResult::Missing);

    ASSERT_EQ(writeCheckpointEx(path, makeSnap(2)),
              CheckpointWriteResult::Ok);
    // The file exists but open fails with EIO: that is Corrupt
    // territory (fall back to an older generation), not Missing.
    ASSERT_TRUE(reg.configureOne("ckpt.read.open", "eio,once=1"));
    EXPECT_EQ(readCheckpoint(path, out),
              CheckpointLoadResult::Corrupt);
    EXPECT_EQ(readCheckpoint(path, out), CheckpointLoadResult::Ok);
}

// -------------------------------------------- ENOSPC prune-retry

TEST_F(Failpoint, StorePrunesOldestGenerationOnEnospc)
{
    auto &reg = fp::Registry::instance();
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("fp_enospc_store");
    cfg.keep = 3;
    CheckpointStore store(cfg);
    for (std::uint64_t s = 1; s <= 3; ++s)
        ASSERT_EQ(store.commit(makeSnap(s)),
                  CheckpointWriteResult::Ok);
    ASSERT_TRUE(
        pathExists(cfg.dir + "/" + CheckpointStore::generationFileName(1)));

    const double before = counterValue("ckpt.enospc_prunes");
    // The volume is "full" for exactly the first body-write attempt;
    // pruning generation 1 frees space and the retry commits.
    ASSERT_TRUE(reg.configureOne("ckpt.body.write", "enospc,once=1"));
    EXPECT_EQ(store.commit(makeSnap(4)), CheckpointWriteResult::Ok);
    EXPECT_EQ(counterValue("ckpt.enospc_prunes"), before + 1.0);
    EXPECT_FALSE(
        pathExists(cfg.dir + "/" + CheckpointStore::generationFileName(1)));

    TrainerSnapshot out;
    const auto load = store.loadLatest(out);
    EXPECT_EQ(load.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.step, 4u);
}

TEST_F(Failpoint, StoreSurfacesNoSpaceWhenPruningCannotHelp)
{
    auto &reg = fp::Registry::instance();
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("fp_enospc_stuck");
    cfg.keep = 3;
    CheckpointStore store(cfg);
    // Only one generation: pruning it would drop the only Ok
    // snapshot, so the store must refuse and surface NoSpace.
    ASSERT_EQ(store.commit(makeSnap(1)), CheckpointWriteResult::Ok);
    ASSERT_TRUE(reg.configureOne("ckpt.body.write", "enospc"));
    EXPECT_EQ(store.commit(makeSnap(2)),
              CheckpointWriteResult::NoSpace);
    reg.reset();
    TrainerSnapshot out;
    EXPECT_EQ(store.loadLatest(out).result, CheckpointLoadResult::Ok);
    EXPECT_EQ(out.step, 1u);
}

TEST_F(Failpoint, StoreReportsUnreadableDirAsDirMissing)
{
    auto &reg = fp::Registry::instance();
    CheckpointStoreConfig cfg;
    cfg.dir = freshDir("fp_baddir");
    CheckpointStore store(cfg);
    ASSERT_EQ(store.commit(makeSnap(1)), CheckpointWriteResult::Ok);
    // An unreadable directory must classify as the typed transient
    // DirMissing (retry), not silently commit as generation 1 over
    // the existing files.
    ASSERT_TRUE(reg.configureOne("fs.listdir", "eio,once=1"));
    EXPECT_EQ(store.commit(makeSnap(2)),
              CheckpointWriteResult::DirMissing);
    reg.reset();
    EXPECT_EQ(store.commit(makeSnap(2)), CheckpointWriteResult::Ok);
    TrainerSnapshot out;
    const auto load = store.loadLatest(out);
    EXPECT_EQ(load.result, CheckpointLoadResult::Ok);
    EXPECT_EQ(load.gen, 2u);
}

// ------------------------------------------ serve report writer

TEST_F(Failpoint, ReportWriterRetriesTransientFailure)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_report");
    const std::string path = dir + "/report.json";
    std::vector<serve::JobReport> reports(1);
    reports[0].id = "job-1";
    reports[0].tenant = "t0";

    ASSERT_TRUE(reg.configureOne("serve.report.write", "eio,once=1"));
    EXPECT_EQ(serve::writeReportsJson(path, reports),
              serve::ReportWriteResult::RetriedOk);
    EXPECT_GT(fileSize(path), 2);
}

TEST_F(Failpoint, ReportWriterDeadLettersOnExhaustion)
{
    auto &reg = fp::Registry::instance();
    const std::string dir = freshDir("fp_report_dl");
    const std::string path = dir + "/report.json";
    std::vector<serve::JobReport> reports(1);
    reports[0].id = "job-dl";

    const double before = counterValue("serve.report_dead_letters");
    ASSERT_TRUE(reg.configureOne("serve.report.open", "enospc"));
    EXPECT_EQ(serve::writeReportsJson(path, reports, 1),
              serve::ReportWriteResult::DeadLettered);
    EXPECT_EQ(counterValue("serve.report_dead_letters"), before + 1.0);
    // No torn report file survives an exhausted budget.
    EXPECT_FALSE(pathExists(path));
}

// ------------------------------------------ dist storage eviction

TEST_F(Failpoint, DistEvictsChipWithPersistentStorageFailure)
{
    auto &reg = fp::Registry::instance();
    const std::string root = freshDir("fp_dist_storage");
    // Every chip's local shard commit fails every wave (full disk).
    // After the failure streak one chip is evicted with the Storage
    // classification; the last alive chip is never evicted, so
    // training still completes (degraded to no durable checkpoints).
    ASSERT_TRUE(reg.configureOne("ckpt.body.write", "enospc"));

    dist::DistHarnessConfig cfg;
    cfg.seed = 31;
    cfg.chips = 2;
    cfg.steps = 8;
    cfg.ckptRoot = root;
    cfg.ckptEvery = 2;
    const auto r = dist::runDistHarness(cfg);
    reg.reset();

    EXPECT_EQ(r.train.stepsCompleted, cfg.steps);
    EXPECT_GE(r.train.survivors, 1u);
    bool sawStorage = false;
    for (const auto &f : r.train.failures)
        sawStorage |= f.kind == dist::ChipFailure::Storage;
    EXPECT_TRUE(sawStorage);
}

} // namespace
} // namespace cq
