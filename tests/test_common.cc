/**
 * @file
 * Tests for the common support library: RNG determinism and
 * distributions, stats registry semantics, the JSON parser's typed
 * error classes (notably the nesting-depth resource limit), and the
 * fileutil error paths (parentDir edges, fsync/CRC/stat of
 * unreadable paths, listDirEx's empty-vs-unreadable distinction).
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/crc32.h"
#include "common/fileutil.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cq {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    // All 17 values should occur in 1000 draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(StatGroup, CounterStartsAtZero)
{
    StatGroup stats;
    EXPECT_EQ(stats.get("nonexistent"), 0.0);
}

TEST(StatGroup, AddAccumulates)
{
    StatGroup stats;
    stats.add("a.b", 2.0);
    stats.add("a.b", 3.0);
    EXPECT_EQ(stats.get("a.b"), 5.0);
}

TEST(StatGroup, CounterReferencePersists)
{
    StatGroup stats;
    double &c = stats.counter("x");
    c += 7.0;
    EXPECT_EQ(stats.get("x"), 7.0);
}

TEST(StatGroup, SumPrefix)
{
    StatGroup stats;
    stats.add("dram.reads", 10.0);
    stats.add("dram.writes", 5.0);
    stats.add("pe.macs", 100.0);
    EXPECT_EQ(stats.sumPrefix("dram."), 15.0);
    EXPECT_EQ(stats.sumPrefix("pe."), 100.0);
    EXPECT_EQ(stats.sumPrefix("zzz"), 0.0);
}

TEST(StatGroup, ResetZeroesEverything)
{
    StatGroup stats;
    stats.add("a", 1.0);
    stats.add("b", 2.0);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0.0);
    EXPECT_EQ(stats.get("b"), 0.0);
}

TEST(StatGroup, MergeAddsValues)
{
    StatGroup a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 3.0);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3.0);
    EXPECT_EQ(a.get("y"), 3.0);
}

TEST(StatGroup, DumpContainsNames)
{
    StatGroup stats;
    stats.add("alpha", 1.0);
    const std::string dump = stats.dump("header");
    EXPECT_NE(dump.find("header"), std::string::npos);
    EXPECT_NE(dump.find("alpha"), std::string::npos);
}

// -------------------------------------------------------------- json

TEST(JsonDepth, DeeplyNestedInputFailsTypedNotByStackOverflow)
{
    // ~100k-deep nesting: without the depth limit this would recurse
    // once per level and smash the stack. The limit must convert it
    // into a typed TooDeep error instead.
    const std::size_t kDepth = 100000;
    std::string text(kDepth, '[');
    text.append(kDepth, ']');
    const json::ParseResult r = json::parse(text);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorKind, json::ParseErrorKind::TooDeep);
    EXPECT_NE(r.error.find("nesting"), std::string::npos);
}

TEST(JsonDepth, LimitIsConfigurableAndExact)
{
    const auto nested = [](int depth) {
        std::string t(static_cast<std::size_t>(depth), '[');
        t.append(static_cast<std::size_t>(depth), ']');
        return t;
    };
    json::ParseOptions opt;
    opt.maxDepth = 8;
    EXPECT_TRUE(json::parse(nested(8), opt).ok);
    const json::ParseResult deep = json::parse(nested(9), opt);
    EXPECT_FALSE(deep.ok);
    EXPECT_EQ(deep.errorKind, json::ParseErrorKind::TooDeep);
    // Objects count the same as arrays.
    json::ParseOptions one;
    one.maxDepth = 1;
    EXPECT_TRUE(json::parse("{\"a\": 1}", one).ok);
    EXPECT_FALSE(json::parse("{\"a\": [1]}", one).ok);
}

TEST(JsonDepth, ErrorKindsDistinguishSyntaxIoAndDepth)
{
    EXPECT_EQ(json::parse("{oops").errorKind,
              json::ParseErrorKind::Syntax);
    EXPECT_EQ(json::parse("[1] trailing").errorKind,
              json::ParseErrorKind::Syntax);
    EXPECT_EQ(json::parseFile("/nonexistent/never.json").errorKind,
              json::ParseErrorKind::Io);
    const json::ParseResult ok = json::parse("[1, 2]");
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.errorKind, json::ParseErrorKind::None);
    EXPECT_STREQ(json::parseErrorKindName(json::ParseErrorKind::TooDeep),
                 "tooDeep");
}

TEST(FileutilErrors, ParentDirEdgeCases)
{
    EXPECT_EQ(parentDir("a/b"), "a");
    EXPECT_EQ(parentDir("/x"), "/");
    EXPECT_EQ(parentDir("plain"), ".");
    EXPECT_EQ(parentDir("/a/b/c.bin"), "/a/b");
    EXPECT_EQ(parentDir(""), ".");
}

TEST(FileutilErrors, FsyncOfMissingPathFails)
{
    EXPECT_FALSE(fsyncPath("/nonexistent/never"));
    EXPECT_FALSE(fsyncParentDir("/nonexistent/never/file.bin"));
}

TEST(FileutilErrors, FileSizeAndCrcOfUnreadableFile)
{
    EXPECT_EQ(fileSize("/nonexistent/never.bin"), -1);
    std::uint32_t crc = 0xdeadbeef;
    EXPECT_FALSE(crc32OfFile("/nonexistent/never.bin", crc));
    // A failed call must not fabricate a value.
    EXPECT_EQ(crc, 0xdeadbeefu);
}

TEST(FileutilErrors, Crc32OfFileMatchesBufferCrc)
{
    const std::string dir = ::testing::TempDir() + "fileutil_crc";
    ASSERT_TRUE(ensureDir(dir));
    const std::string path = dir + "/blob.bin";
    const std::string payload = "the quick brown fox";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
              payload.size());
    ASSERT_EQ(std::fclose(f), 0);
    std::uint32_t fromFile = 0;
    ASSERT_TRUE(crc32OfFile(path, fromFile));
    EXPECT_EQ(fromFile, crc32(payload.data(), payload.size(), 0));
    EXPECT_EQ(fileSize(path),
              static_cast<long long>(payload.size()));
}

TEST(FileutilErrors, ListDirExDistinguishesEmptyFromUnreadable)
{
    const std::string dir = ::testing::TempDir() + "fileutil_empty";
    ASSERT_TRUE(ensureDir(dir));
    for (const std::string &f : listDir(dir))
        std::remove((dir + "/" + f).c_str());

    std::vector<std::string> names{"stale"};
    int err = 0;
    EXPECT_TRUE(listDirEx(dir, names, &err));
    EXPECT_TRUE(names.empty());

    // listDir() cannot tell these apart — listDirEx can.
    EXPECT_FALSE(listDirEx("/nonexistent/never", names, &err));
    EXPECT_EQ(err, ENOENT);
    EXPECT_TRUE(names.empty());
    EXPECT_TRUE(listDir("/nonexistent/never").empty());
}

} // namespace
} // namespace cq
