/**
 * @file
 * Companion translation unit for the CQ_OBS_DISABLED compile-out
 * proof. This TU defines CQ_OBS_DISABLED *before* including the trace
 * header, so every CQ_TRACE_SCOPE below expands to the empty
 * statement. test_obs.cc calls runCompiledOutSpans() with tracing
 * enabled and asserts that nothing was recorded — the macro genuinely
 * vanished rather than merely being cheap.
 */

#define CQ_OBS_DISABLED 1
#include "obs/trace.h"

namespace cq::obs::testing {

void
runCompiledOutSpans(int n)
{
    for (int i = 0; i < n; ++i) {
        CQ_TRACE_SCOPE("disabled.tu.span");
        CQ_TRACE_SCOPE("disabled.tu.inner");
    }
}

} // namespace cq::obs::testing
