/**
 * @file
 * Tests for the observability subsystem (src/obs/): scoped tracing,
 * the typed metric registry with StatGroup bridging, per-step training
 * telemetry, the StatGroup reference-lifetime contract, and the
 * timestamped / JSONL-structured logging sinks.
 *
 * The overarching invariant under test: observability is output-only.
 * Enabling every sink must leave trained weights bitwise identical to
 * a run with everything off.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "arch/accelerator.h"
#include "arch/trace_export.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "nn/guard/crash_harness.h"
#include "obs/context.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/obs_server.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/scheduler.h"
#include "tensor/tensor_ops.h"

using namespace cq;

namespace cq::obs::testing {
/** Defined in test_obs_disabled_tu.cc with CQ_OBS_DISABLED set. */
void runCompiledOutSpans(int n);
} // namespace cq::obs::testing

namespace {

/** CQ_LOG_JSONL must be in the environment before the first log call
 *  (the sink latches it once); a namespace-scope initializer runs
 *  before main() and therefore before any test logs. */
std::string
jsonlLogPath()
{
    static const std::string path =
        ::testing::TempDir() + "cq_test_obs_log_" +
        std::to_string(::getpid()) + ".jsonl";
    return path;
}

const bool gLogEnvReady = [] {
    ::setenv("CQ_LOG_JSONL", jsonlLogPath().c_str(), 1);
    ::unsetenv("CQ_TRACE"); // the kill-switch would defeat the tests
    return true;
}();

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(pos));
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

/** Pull the numeric value of `"key":<number>` out of a JSON line. */
double
jsonNumber(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    if (at == std::string::npos)
        return 0.0;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/** Fixture giving each trace test a clean, enabled session and
 *  restoring the disabled default afterwards. */
class ObsTraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ASSERT_TRUE(gLogEnvReady);
        obs::TraceSession::instance().clear();
        obs::TraceSession::instance().setEnabled(true);
    }
    void TearDown() override
    {
        obs::TraceSession::instance().setEnabled(false);
        obs::TraceSession::instance().clear();
    }
};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogram, PercentilesMatchExactReferenceWithinBucketWidth)
{
    // Uniform-ish deterministic data over [0, 1000) against buckets of
    // width 50: interpolation error is bounded by one bucket width.
    std::vector<double> bounds;
    for (double b = 50.0; b <= 1000.0; b += 50.0)
        bounds.push_back(b);
    obs::Histogram h(bounds);

    std::vector<double> data;
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 5000; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        data.push_back(static_cast<double>((lcg >> 33) % 100000) /
                       100.0);
    }
    for (double v : data)
        h.observe(v);

    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
        const double exact = sorted[rank == 0 ? 0 : rank - 1];
        EXPECT_NEAR(h.percentile(p), exact, 50.0) << "p" << p;
    }
    EXPECT_EQ(h.count(), data.size());
}

TEST(ObsHistogram, ExactPercentileInSingleKnownBucket)
{
    // 4 observations, all in (100, 200]: rank interpolation is exact
    // linear within the bucket.
    obs::Histogram h({100.0, 200.0, 300.0});
    for (double v : {150.0, 150.0, 150.0, 150.0})
        h.observe(v);
    // p50 -> rank 2 of 4 -> 100 + 100 * (2/4) = 150.
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 150.0);
    // p100 -> full bucket -> its upper bound.
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 200.0);
    EXPECT_DOUBLE_EQ(h.sum(), 600.0);
}

TEST(ObsHistogram, OverflowLandsInInfBucketAndClampsPercentile)
{
    obs::Histogram h({1.0, 2.0});
    h.observe(0.5);
    h.observe(1e9); // +Inf bucket
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u); // index bounds.size() == +Inf
    // The p99 rank lands in +Inf: clamp to the last finite bound.
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 2.0);
    // p0 clamps to rank 1 (the smallest observation's bucket).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(ObsHistogram, EmptyAndResetBehave)
{
    obs::Histogram h(obs::Histogram::defaultTimeBoundsUs());
    EXPECT_EQ(h.percentile(50.0), 0.0);
    h.observe(3.0);
    EXPECT_EQ(h.count(), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry + exports
// ---------------------------------------------------------------------------

TEST(ObsMetrics, RegistryIsLookupOrCreateAndStable)
{
    auto &reg = obs::MetricRegistry::instance();
    obs::Counter &c1 = reg.counter("obs_test.stable");
    obs::Counter &c2 = reg.counter("obs_test.stable");
    EXPECT_EQ(&c1, &c2);
    c1.inc();
    c1.add(2.5);
    EXPECT_DOUBLE_EQ(c2.value(), 3.5);

    obs::Gauge &g = reg.gauge("obs_test.gauge");
    g.set(7.0);
    EXPECT_DOUBLE_EQ(reg.gauge("obs_test.gauge").value(), 7.0);

    // reset() zeroes but never deletes: the references stay usable.
    reg.reset();
    EXPECT_DOUBLE_EQ(c1.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    c1.inc();
    EXPECT_DOUBLE_EQ(reg.counter("obs_test.stable").value(), 1.0);
}

TEST(ObsMetrics, PromMetricNameMangling)
{
    EXPECT_EQ(obs::promMetricName("ckpt.commit_latency_us"),
              "cq_ckpt_commit_latency_us");
    EXPECT_EQ(obs::promMetricName("gemm.calls"), "cq_gemm_calls");
}

TEST(ObsMetrics, PromExportCarriesTypedMetricsAndBridgedStatGroups)
{
    auto &reg = obs::MetricRegistry::instance();
    reg.counter("obs_test.calls").add(4.0);
    obs::Histogram &h = reg.histogram("obs_test.lat_us");
    h.reset();
    for (double v : {3.0, 30.0, 300.0})
        h.observe(v);

    StatGroup bridged;
    bridged.counter("faults.injected") = 3.0;
    bridged.counter("ecc.corrected") = 2.0;

    const std::string prom = reg.promText({&bridged});
    // HELP keeps the dotted name so greps for the canonical names work.
    EXPECT_NE(prom.find("# HELP cq_obs_test_calls obs_test.calls"),
              std::string::npos);
    EXPECT_NE(prom.find("cq_obs_test_calls 4"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE cq_obs_test_lat_us histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("cq_obs_test_lat_us_bucket{le=\"5\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("cq_obs_test_lat_us_count 3"),
              std::string::npos);
    EXPECT_NE(prom.find("cq_obs_test_lat_us_p50"), std::string::npos);
    EXPECT_NE(prom.find("cq_faults_injected 3"), std::string::npos);
    EXPECT_NE(prom.find("cq_ecc_corrected 2"), std::string::npos);
}

TEST(ObsMetrics, JsonSnapshotIsBalancedAndContainsSections)
{
    auto &reg = obs::MetricRegistry::instance();
    reg.counter("obs_test.json\"quote").inc(); // exercises escaping
    StatGroup bridged;
    bridged.counter("guard.rollbacks") = 1.0;
    const std::string json = reg.jsonText({&bridged});

    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"guard.rollbacks\""), std::string::npos);
    EXPECT_NE(json.find("obs_test.json\\\"quote"), std::string::npos);
    long depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (inString) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                inString = false;
            continue;
        }
        if (ch == '"')
            inString = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST_F(ObsTraceTest, RecordsNestedSpansAndFiltersByName)
{
    {
        CQ_TRACE_SCOPE("obs_test.outer");
        CQ_TRACE_SCOPE("obs_test.inner");
    }
    { CQ_TRACE_SCOPE("obs_test.outer"); }
    auto &session = obs::TraceSession::instance();
    EXPECT_EQ(session.spanCount("obs_test.outer"), 2u);
    EXPECT_EQ(session.spanCount("obs_test.inner"), 1u);
    EXPECT_EQ(session.spanCount(), 3u);

    const std::string json = session.chromeTraceJson();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST_F(ObsTraceTest, DisabledSessionRecordsNothing)
{
    auto &session = obs::TraceSession::instance();
    session.setEnabled(false);
    { CQ_TRACE_SCOPE("obs_test.off"); }
    EXPECT_EQ(session.spanCount(), 0u);
    session.setEnabled(true);
    { CQ_TRACE_SCOPE("obs_test.on"); }
    EXPECT_EQ(session.spanCount(), 1u);
}

TEST_F(ObsTraceTest, GemmSpanCountIsThreadCountInvariant)
{
    auto &pool = ThreadPool::instance();
    const unsigned before = pool.numThreads();
    auto &session = obs::TraceSession::instance();

    std::size_t counts[2] = {0, 0};
    const unsigned threadings[2] = {1, 4};
    for (int t = 0; t < 2; ++t) {
        pool.setNumThreads(threadings[t]);
        session.clear();
        Tensor a({48, 48}, 0.5f), b({48, 48}, 0.25f);
        for (int i = 0; i < 5; ++i)
            (void)matmul(a, b);
        (void)matmulTransB(a, b);
        counts[t] = session.spanCount("gemm.matmul");
        EXPECT_EQ(session.spanCount("gemm.matmulTransB"), 1u);
    }
    pool.setNumThreads(before);

    // pool.chunk spans legitimately vary with the thread count; the
    // semantic span count must not.
    EXPECT_EQ(counts[0], 5u);
    EXPECT_EQ(counts[0], counts[1]);
}

TEST_F(ObsTraceTest, CompiledOutSpansRecordNothingEvenWhenEnabled)
{
    auto &session = obs::TraceSession::instance();
    obs::testing::runCompiledOutSpans(1000);
    EXPECT_EQ(session.spanCount(), 0u);
    { CQ_TRACE_SCOPE("obs_test.still_alive"); }
    EXPECT_EQ(session.spanCount(), 1u);
}

TEST(ObsTraceOverhead, RuntimeDisabledSpanIsNearFree)
{
    obs::TraceSession::instance().setEnabled(false);
    constexpr int kSpans = 1000000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpans; ++i) {
        CQ_TRACE_SCOPE("obs_test.disabled_cost");
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    // One relaxed load + branch per span. Even valgrind-grade machines
    // do a million of those well inside this bound; a regression that
    // starts taking the enabled path (clock reads, buffer appends)
    // blows straight past it.
    EXPECT_LT(ms, 250.0);
    EXPECT_EQ(obs::TraceSession::instance().spanCount(
                  "obs_test.disabled_cost"),
              0u);
}

TEST_F(ObsTraceTest, PerfReportBridgesToArchTracks)
{
    arch::PerfReport report;
    arch::TraceEntry e1;
    e1.instr = 0;
    e1.unit = arch::Unit::DmaLoad;
    e1.phase = arch::Phase::FW;
    e1.start = 0;
    e1.end = 2000;
    arch::TraceEntry e2 = e1;
    e2.instr = 1;
    e2.start = 2000;
    e2.end = 5000;
    report.trace = {e1, e2};

    auto &session = obs::TraceSession::instance();
    const std::size_t n =
        arch::exportPerfTraceToSession(report, 1.0, session);
    EXPECT_EQ(n, 2u);

    const std::string json = session.chromeTraceJson();
    EXPECT_NE(json.find("\"arch.dma-load\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(json.find("\"instr\""), std::string::npos);
    // 2000 ticks at 1 GHz = 2 us.
    EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Telemetry + the observational-only invariant
// ---------------------------------------------------------------------------

TEST(ObsTelemetry, StepRecordRendersCompactJson)
{
    obs::StepTelemetry rec;
    rec.step = 3;
    rec.loss = 0.5;
    rec.gradMaxAbs = 1.25;
    rec.stepUs = 100.0;
    rec.fwdUs = 40.0;
    rec.layerFormats["fc1"][8] = 2;
    rec.counterDeltas["ecc.corrected"] = 1.0;
    const std::string json = rec.toJson();
    EXPECT_EQ(json.rfind("{\"step\":3,", 0), 0u);
    EXPECT_NE(json.find("\"loss\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"grad_max_abs\":1.25"), std::string::npos);
    EXPECT_NE(json.find("\"fwd\":40.000"), std::string::npos);
    EXPECT_NE(json.find("\"fc1\""), std::string::npos);
    EXPECT_NE(json.find("\"ecc.corrected\":1"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ObsTelemetry, FullStackRunIsBitwiseIdenticalToObsOffRun)
{
    const std::string dir = ::testing::TempDir();
    const std::string telemA = dir + "obs_telem_a.jsonl";
    const std::string telemB = dir + "obs_telem_b.jsonl";

    nn::guard::CrashHarnessConfig base;
    base.seed = 99;
    base.steps = 6;
    base.batchSize = 16;
    base.ckptEvery = 3;

    // Leg A: every observability sink on.
    nn::guard::CrashHarnessConfig a = base;
    a.dir = dir + "obs_ck_a";
    a.traceOut = dir + "obs_trace_a.json";
    a.metricsOut = dir + "obs_metrics_a.prom";
    a.telemetryOut = telemA;
    a.metricsEvery = 2;
    const auto ra = nn::guard::runCrashHarness(a);

    // Leg B: everything off (the harness enabled tracing; undo it).
    obs::TraceSession::instance().setEnabled(false);
    obs::TraceSession::instance().clear();
    nn::guard::CrashHarnessConfig b = base;
    b.dir = dir + "obs_ck_b";
    b.mastersOut = dir + "obs_masters_b.bin";
    const auto rb = nn::guard::runCrashHarness(b);

    EXPECT_EQ(ra.mastersCrc, rb.mastersCrc);
    EXPECT_DOUBLE_EQ(ra.finalLoss, rb.finalLoss);

    // The telemetry itself: one JSON line per step, steps 1..6.
    const auto lines = splitLines(slurp(telemA));
    ASSERT_EQ(lines.size(), 6u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_DOUBLE_EQ(jsonNumber(lines[i], "step"),
                         static_cast<double>(i + 1));
        EXPECT_NE(lines[i].find("\"phases_us\""), std::string::npos);
        EXPECT_NE(lines[i].find("\"formats\""), std::string::npos);
    }
    // Final-loss cross-check against the last record.
    EXPECT_NEAR(jsonNumber(lines.back(), "loss"), ra.finalLoss, 1e-12);

    // Replay: a third identical telemetry run logs the identical loss
    // curve (the training loop is deterministic, telemetry included).
    nn::guard::CrashHarnessConfig c = base;
    c.dir = dir + "obs_ck_c";
    c.telemetryOut = telemB;
    const auto rc = nn::guard::runCrashHarness(c);
    EXPECT_EQ(rc.mastersCrc, ra.mastersCrc);
    const auto lines2 = splitLines(slurp(telemB));
    ASSERT_EQ(lines2.size(), lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
        EXPECT_DOUBLE_EQ(jsonNumber(lines[i], "loss"),
                         jsonNumber(lines2[i], "loss"));

    // The metrics snapshot bridged the trainer's resilience counters
    // and contains at least one histogram with samples.
    const std::string prom = slurp(a.metricsOut);
    EXPECT_NE(prom.find("trainer.step_time"), std::string::npos);
    EXPECT_NE(prom.find("cq_trainer_step_time_us_count 6"),
              std::string::npos);
    EXPECT_NE(prom.find("guard."), std::string::npos);

    // And the trace has trainer phases plus GEMM spans.
    const std::string trace = slurp(a.traceOut);
    for (const char *want :
         {"\"trainer.step\"", "\"trainer.fwd\"", "\"trainer.bwd\"",
          "\"trainer.quant\"", "\"trainer.optim\"", "\"gemm.matmul\""})
        EXPECT_NE(trace.find(want), std::string::npos) << want;
}

// ---------------------------------------------------------------------------
// StatGroup reference-lifetime contract
// ---------------------------------------------------------------------------

TEST(ObsStatGroup, ReferencesSurviveInsertMergeAndReset)
{
    StatGroup g;
    double &r = g.counter("alpha");
    r = 5.0;
    for (int i = 0; i < 200; ++i)
        g.counter("filler." + std::to_string(i)) = 1.0;
    StatGroup other;
    other.counter("alpha") = 2.0;
    other.counter("beta") = 3.0;
    g.merge(other);
    EXPECT_EQ(&r, &g.counter("alpha"));
    EXPECT_DOUBLE_EQ(r, 7.0);
    g.reset();
    EXPECT_DOUBLE_EQ(r, 0.0);
    r = 1.0;
    EXPECT_DOUBLE_EQ(g.get("alpha"), 1.0);
}

TEST(ObsStatGroup, HandleTracksGenerationAcrossBenignMutation)
{
    StatGroup g;
    StatGroup::Handle h = g.handle("hits");
    h.add(2.0);
    g.counter("other") = 9.0;
    g.merge(g); // self-merge doubles every counter, moves no node
    g.reset();
    h.set(4.0);
    EXPECT_TRUE(h.valid());
    EXPECT_DOUBLE_EQ(g.get("hits"), 4.0);
    EXPECT_EQ(g.generation(), 0u);
}

TEST(ObsStatGroupDeathTest, HandleOutlivingAssignedOverGroupPanics)
{
    StatGroup g;
    StatGroup::Handle h = g.handle("hits");
    h.add(1.0);
    StatGroup replacement;
    replacement.counter("hits") = 100.0;
    g = replacement; // wholesale map replacement: handle goes stale
    EXPECT_FALSE(h.valid());
    EXPECT_DEATH(h.add(1.0), "outlived");
}

TEST(ObsStatGroupDeathTest, UnboundHandlePanics)
{
    StatGroup::Handle h;
    EXPECT_FALSE(h.valid());
    EXPECT_DEATH(h.get(), "before binding");
}

// ---------------------------------------------------------------------------
// Logging satellites
// ---------------------------------------------------------------------------

TEST(ObsLogging, PrefixCarriesIsoTimestampThreadIdAndLevel)
{
    ::testing::internal::CaptureStderr();
    warn("obs timestamp probe %d", 41);
    inform("obs inform probe");
    const std::string err = ::testing::internal::GetCapturedStderr();

    // [2026-01-01T12:00:00.123Z t0 warn] obs timestamp probe 41
    const std::size_t at = err.find(" warn] obs timestamp probe 41\n");
    ASSERT_NE(at, std::string::npos) << err;
    const std::size_t open = err.rfind('[', at);
    ASSERT_NE(open, std::string::npos);
    const std::string stamp = err.substr(open + 1, at - open - 1);
    // "YYYY-MM-DDTHH:MM:SS.mmmZ tN"
    ASSERT_GE(stamp.size(), 27u);
    EXPECT_EQ(stamp[4], '-');
    EXPECT_EQ(stamp[10], 'T');
    EXPECT_EQ(stamp[13], ':');
    EXPECT_EQ(stamp[23], 'Z');
    EXPECT_EQ(stamp[24], ' ');
    EXPECT_EQ(stamp[25], 't');
    EXPECT_NE(err.find(" info] obs inform probe\n"),
              std::string::npos);
}

TEST(ObsLogging, JsonlSinkReceivesStructuredRecords)
{
    warn("obs jsonl probe %s", "xyzzy");
    const std::string log = slurp(jsonlLogPath());
    ASSERT_FALSE(log.empty())
        << "CQ_LOG_JSONL sink never opened " << jsonlLogPath();
    const auto lines = splitLines(log);
    bool found = false;
    for (const auto &line : lines) {
        if (line.find("obs jsonl probe xyzzy") == std::string::npos)
            continue;
        found = true;
        EXPECT_EQ(line.rfind("{\"ts\":\"", 0), 0u);
        EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
        EXPECT_NE(line.find("\"tid\":"), std::string::npos);
    }
    EXPECT_TRUE(found) << log;
}

// ---------------------------------------------------------------------------
// Trace ring cap
// ---------------------------------------------------------------------------

TEST_F(ObsTraceTest, SpanRingCapsMemoryAndCountsDroppedSpans)
{
    auto &session = obs::TraceSession::instance();
    auto &dropped =
        obs::MetricRegistry::instance().counter("obs.trace_dropped");
    const std::size_t savedCap = session.spanCap();
    const double droppedBefore = dropped.value();

    session.setSpanCap(8);
    for (int i = 0; i < 12; ++i)
        session.record("ring.old", 1000u + i, 2000u + i);
    for (int i = 0; i < 8; ++i)
        session.record("ring.new", 3000u + i, 4000u + i);
    // The ring holds the cap, the counter books the overflow, and the
    // *newest* spans survive (the ring overwrites the oldest): every
    // "ring.old" span has been displaced by a later one.
    EXPECT_EQ(session.spanCount(), 8u);
    EXPECT_EQ(session.spanCount("ring.new"), 8u);
    EXPECT_EQ(session.spanCount("ring.old"), 0u);
    EXPECT_DOUBLE_EQ(dropped.value() - droppedBefore, 12.0);

    // Cap 0: record nothing, count everything.
    session.clear();
    session.setSpanCap(0);
    const double base = dropped.value();
    session.record("ring.probe", 1, 2);
    EXPECT_EQ(session.spanCount("ring.probe"), 0u);
    EXPECT_DOUBLE_EQ(dropped.value() - base, 1.0);

    session.setSpanCap(savedCap);
}

// ---------------------------------------------------------------------------
// ObsContext propagation
// ---------------------------------------------------------------------------

TEST_F(ObsTraceTest, ContextLabelsLandInSpanArgsAcrossPoolChunks)
{
    auto &session = obs::TraceSession::instance();
    {
        obs::ObsContextScope ctx("job-7", "tenant-x");
        obs::setObsStep(42);
        { CQ_TRACE_SCOPE("ctx.direct"); }
        // Pool workers adopt the caller's frame, so chunk-side spans
        // carry the same attribution.
        parallelFor(0, 4, 1, [&](std::size_t, std::size_t) {
            CQ_TRACE_SCOPE("ctx.chunk");
        });
        {
            // Chip scope inherits job/tenant and adds the chip track.
            obs::ObsContextScope chip(3);
            CQ_TRACE_SCOPE("ctx.chip");
        }
    }
    { CQ_TRACE_SCOPE("ctx.outside"); } // restored: no args

    const std::string json = session.chromeTraceJson();
    // One span event as a substring: from its "name" key to the start
    // of the next event (span events are adjacent in the array).
    const auto argsOf = [&](const char *name) {
        const std::size_t at = json.find(std::string("\"name\":\"") +
                                         name + "\"");
        EXPECT_NE(at, std::string::npos) << name << " in " << json;
        if (at == std::string::npos)
            return std::string();
        const std::size_t end = json.find(",{\"name\"", at);
        return json.substr(at, end == std::string::npos
                                   ? std::string::npos
                                   : end - at);
    };
    EXPECT_NE(argsOf("ctx.direct").find("\"job\":\"job-7\""),
              std::string::npos);
    EXPECT_NE(argsOf("ctx.direct").find("\"tenant\":\"tenant-x\""),
              std::string::npos);
    EXPECT_NE(argsOf("ctx.direct").find("\"step\":42"),
              std::string::npos);
    EXPECT_NE(argsOf("ctx.chunk").find("\"job\":\"job-7\""),
              std::string::npos);
    EXPECT_NE(argsOf("ctx.chip").find("\"chip\":3"),
              std::string::npos);
    // Chip spans render on the per-chip process (pid 3, tid = chip).
    EXPECT_NE(json.find("\"args\":{\"name\":\"chip-3\"}"),
              std::string::npos);
    EXPECT_EQ(argsOf("ctx.outside").find("\"job\""),
              std::string::npos);

    // A jobId filter keeps only the attributed spans.
    obs::TraceExportFilter filter;
    filter.jobId = "job-7";
    const std::string filtered = session.chromeTraceJson(filter);
    EXPECT_NE(filtered.find("ctx.direct"), std::string::npos);
    EXPECT_EQ(filtered.find("ctx.outside"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP export plane
// ---------------------------------------------------------------------------

TEST(ObsHttp, RequestParserHandlesTargetsAndQueries)
{
    obs::HttpRequest req;
    ASSERT_TRUE(obs::parseHttpRequest(
        "GET /trace?last_ms=250&x=y HTTP/1.1\r\nHost: h\r\n\r\n",
        req));
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/trace");
    EXPECT_EQ(obs::httpQueryParam(req, "last_ms", ""), "250");
    EXPECT_EQ(obs::httpQueryParam(req, "x", ""), "y");
    EXPECT_EQ(obs::httpQueryParam(req, "absent", "dflt"), "dflt");
    EXPECT_FALSE(obs::parseHttpRequest("garbage", req));
}

TEST(ObsHttp, EndpointsRoundTripOverLoopback)
{
    obs::MetricRegistry::instance().counter("obs.test.requests").inc();
    obs::ObsServerConfig cfg; // port 0 = ephemeral
    cfg.jobsJson = [] {
        return std::string("{\"jobs\":[{\"id\":\"probe\"}]}");
    };
    cfg.health.emplace_back(
        "probe", [] { return std::string("{\"alive\":true}"); });
    StatGroup bridgedGroup;
    bridgedGroup.add("bridge.value", 7);
    cfg.bridged = [&] {
        std::vector<StatGroup> v;
        v.push_back(bridgedGroup);
        return v;
    };
    obs::ObsServer server;
    ASSERT_TRUE(server.start(cfg));
    ASSERT_GT(server.port(), 0);

    int status = 0;
    std::string body;
    ASSERT_TRUE(
        obs::httpGet(server.port(), "/metrics", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("cq_obs_test_requests"), std::string::npos);
    EXPECT_NE(body.find("cq_bridge_value 7"), std::string::npos);

    ASSERT_TRUE(
        obs::httpGet(server.port(), "/metrics.json", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"counters\""), std::string::npos);

    ASSERT_TRUE(
        obs::httpGet(server.port(), "/healthz", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(body.find("\"probe\":{\"alive\":true}"),
              std::string::npos);

    ASSERT_TRUE(obs::httpGet(server.port(), "/jobs", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"id\":\"probe\""), std::string::npos);

    ASSERT_TRUE(
        obs::httpGet(server.port(), "/trace?last_ms=0", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);

    ASSERT_TRUE(obs::httpGet(server.port(), "/trace?last_ms=junk",
                             status, body));
    EXPECT_EQ(status, 400);

    ASSERT_TRUE(obs::httpGet(server.port(), "/nope", status, body));
    EXPECT_EQ(status, 404);

    EXPECT_GE(server.requestsServed(), 7u);
    EXPECT_FALSE(server.degraded());
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ObsHttp, InjectedFailureLatchesDegradedDropModeNotACrash)
{
    std::string err;
    ASSERT_TRUE(fp::Registry::instance().configureOne(
        "obs.http.write", "fail,once=1", &err))
        << err;
    obs::ObsServerConfig cfg;
    obs::ObsServer server;
    ASSERT_TRUE(server.start(cfg));

    int status = 0;
    std::string body;
    // First scrape trips the armed write; the server latches degraded
    // drop mode instead of erroring out.
    obs::httpGet(server.port(), "/metrics", status, body, 2000);
    // Every later connection is accepted and dropped, typed and
    // counted — never a hang, never a crash.
    EXPECT_FALSE(
        obs::httpGet(server.port(), "/metrics", status, body, 2000));
    EXPECT_TRUE(server.degraded());
    EXPECT_GE(server.connectionsDropped(), 1u);
    server.stop();
    fp::Registry::instance().disarmAll();
}

// ---------------------------------------------------------------------------
// Scraped-vs-dark bitwise identity through the serve plane
// ---------------------------------------------------------------------------

TEST(ObsServe, ScrapedServeRunMatchesDarkRunBitwise)
{
    const auto runTrial =
        [](bool scraped, const std::string &traceDir) {
            serve::SchedulerConfig cfg;
            cfg.workers = 2;
            cfg.queue.capacity = 8;
            cfg.backoffScale = 0.01;
            cfg.perJobTraceDir = traceDir;
            if (scraped)
                obs::TraceSession::instance().setEnabled(true);
            serve::Scheduler sched(cfg);

            obs::ObsServer server;
            std::atomic<bool> stopScrape{false};
            std::thread scraper;
            if (scraped) {
                obs::ObsServerConfig scfg;
                scfg.bridged = [&sched] {
                    std::vector<StatGroup> v;
                    v.push_back(sched.statGroup());
                    return v;
                };
                scfg.jobsJson = [&sched] { return sched.jobsJson(); };
                EXPECT_TRUE(server.start(scfg));
                scraper = std::thread([&] {
                    const char *paths[] = {"/metrics", "/jobs",
                                           "/trace?last_ms=50"};
                    int i = 0;
                    while (!stopScrape.load()) {
                        int status = 0;
                        std::string body;
                        obs::httpGet(server.port(), paths[i++ % 3],
                                     status, body, 1000);
                        ::usleep(5000);
                    }
                });
            }

            for (int j = 0; j < 3; ++j) {
                serve::JobSpec spec;
                spec.id = "obs-job-" + std::to_string(j);
                spec.tenant = j % 2 == 0 ? "even" : "odd";
                spec.seed = 100 + j;
                spec.steps = 12;
                EXPECT_TRUE(serve::admissionAccepted(
                    sched.submit(spec).verdict));
            }
            EXPECT_TRUE(sched.waitIdle(60000));
            if (scraped) {
                stopScrape.store(true);
                scraper.join();
                server.stop();
                obs::TraceSession::instance().setEnabled(false);
                obs::TraceSession::instance().clear();
            }
            std::map<std::string, std::uint32_t> crcs;
            for (const serve::JobReport &r : sched.reports()) {
                EXPECT_EQ(r.state, serve::JobState::Completed);
                crcs[r.id] = r.resultCrc;
            }
            return crcs;
        };

    const std::string traceDir =
        ::testing::TempDir() + "obs_serve_traces";
    for (int j = 0; j < 3; ++j)
        std::remove((traceDir + "/trace-job-obs-job-" +
                     std::to_string(j) + ".json")
                        .c_str());
    const auto dark = runTrial(false, "");
    const auto lit = runTrial(true, traceDir);
    ASSERT_EQ(dark.size(), 3u);
    EXPECT_EQ(dark, lit);

    // Per-job trace files: written at terminal settle, filtered to
    // that job's spans only.
    const std::string t0 = slurp(traceDir + "/trace-job-obs-job-0.json");
    ASSERT_FALSE(t0.empty());
    EXPECT_NE(t0.find("\"job\":\"obs-job-0\""), std::string::npos);
    EXPECT_EQ(t0.find("\"job\":\"obs-job-1\""), std::string::npos);
    EXPECT_NE(t0.find("\"tenant\":\"even\""), std::string::npos);
}

} // namespace
