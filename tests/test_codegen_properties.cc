/**
 * @file
 * Property tests of the code generator and the energy/ISA
 * infrastructure: for swept GEMM shapes and targets, emitted programs
 * must validate, move at least the operand footprints, keep every
 * tile within the double-buffered on-chip capacities, and simulate
 * deterministically. Plus ISA encode/decode round trips and energy
 * model unit tests.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "arch/accelerator.h"
#include "arch/isa.h"
#include "baseline/tpu_sim.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"
#include "energy/energy_model.h"

namespace cq {
namespace {

using compiler::CodegenOptions;
using compiler::GemmTask;
using compiler::Task;
using compiler::WorkloadIR;

WorkloadIR
singleGemmWorkload(std::uint64_t m, std::uint64_t n, std::uint64_t k)
{
    WorkloadIR ir;
    ir.name = "one-gemm";
    ir.batch = 1;
    GemmTask g;
    g.layer = "L";
    g.m = m;
    g.n = n;
    g.k = k;
    g.aTensor = "input";
    g.bTensor = "w:L";
    g.freshWeightElems = k * n;
    g.cTensor = "act:L";
    ir.tasks.push_back(Task::make(g));
    ir.finalize();
    return ir;
}

// ------------------------------------------------- codegen shape sweep

struct GemmShape
{
    std::uint64_t m, n, k;
};

class CodegenShapes
    : public ::testing::TestWithParam<std::tuple<GemmShape, int>>
{
};

TEST_P(CodegenShapes, ProgramValidatesAndCoversOperands)
{
    const auto [shape, target] = GetParam();
    const WorkloadIR ir =
        singleGemmWorkload(shape.m, shape.n, shape.k);
    const arch::CambriconQConfig cfg =
        target == 0 ? arch::CambriconQConfig::edge()
                    : baseline::tpuConfig();
    CodegenOptions opts;
    opts.target = target == 0 ? CodegenOptions::Target::CambriconQ
                              : CodegenOptions::Target::Tpu;
    const arch::Program prog =
        compiler::generateProgram(ir, cfg, opts);
    ASSERT_TRUE(validateProgram(prog));

    // Loads must cover at least one pass over each operand (A once,
    // quantized B once); stores at least the output.
    const auto traffic = compiler::summarizeTraffic(prog);
    EXPECT_GE(traffic.loadBytes, shape.m * shape.k + shape.k * shape.n);
    EXPECT_GE(traffic.storeBytes, shape.m * shape.n);

    // All MM tiles must fit the double-buffered capacities.
    for (const auto &ins : prog) {
        if (ins.op != arch::Opcode::MM &&
            ins.op != arch::Opcode::CONV)
            continue;
        EXPECT_LE(static_cast<Bytes>(ins.m) * ins.k * ins.bitsA / 8,
                  cfg.nbinBytes / 2)
            << ins.toString();
        EXPECT_LE(static_cast<Bytes>(ins.k) * ins.n * ins.bitsB / 8,
                  cfg.sbBytes / 2)
            << ins.toString();
        EXPECT_LE(static_cast<Bytes>(ins.m) * ins.n * 4,
                  cfg.nboutBytes)
            << ins.toString();
    }

    // The emitted MM tiles cover exactly the full GEMM volume.
    std::uint64_t macs = 0;
    for (const auto &ins : prog) {
        if (ins.op == arch::Opcode::MM ||
            ins.op == arch::Opcode::CONV)
            macs += static_cast<std::uint64_t>(ins.m) * ins.n * ins.k;
    }
    EXPECT_EQ(macs, shape.m * shape.n * shape.k);
}

TEST_P(CodegenShapes, SimulationDeterministicAndFinite)
{
    const auto [shape, target] = GetParam();
    const WorkloadIR ir =
        singleGemmWorkload(shape.m, shape.n, shape.k);
    const arch::CambriconQConfig cfg =
        target == 0 ? arch::CambriconQConfig::edge()
                    : baseline::tpuConfig();
    CodegenOptions opts;
    opts.target = target == 0 ? CodegenOptions::Target::CambriconQ
                              : CodegenOptions::Target::Tpu;
    const arch::Program prog =
        compiler::generateProgram(ir, cfg, opts);
    const Tick t1 = arch::Accelerator(cfg).run(prog).totalTicks;
    const Tick t2 = arch::Accelerator(cfg).run(prog).totalTicks;
    EXPECT_EQ(t1, t2);
    EXPECT_GT(t1, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTargets, CodegenShapes,
    ::testing::Combine(
        ::testing::Values(GemmShape{1, 1, 1}, GemmShape{7, 13, 17},
                          GemmShape{512, 64, 576},
                          GemmShape{64, 1000, 4096},
                          GemmShape{4096, 64, 64},
                          GemmShape{33, 4097, 129}),
        ::testing::Values(0, 1)),
    [](const auto &info) {
        const auto &s = std::get<0>(info.param);
        return std::string(std::get<1>(info.param) == 0 ? "cq" : "tpu") +
               "_m" + std::to_string(s.m) + "n" + std::to_string(s.n) +
               "k" + std::to_string(s.k);
    });

// --------------------------------------------------- ISA round trip

TEST(IsaEncoding, RoundTripsEveryField)
{
    arch::Instr ins;
    ins.op = arch::Opcode::WGSTORE;
    ins.phase = arch::Phase::WU;
    ins.addr = 0x123456789abcull;
    ins.bytes = 0x11223344ull;
    ins.addr2 = 0xdeadbeefull;
    ins.bytes2 = 77;
    ins.buf = arch::BufId::NBout;
    ins.m = 123;
    ins.n = 456;
    ins.k = 789;
    ins.bitsA = 12;
    ins.bitsB = 16;
    ins.elems = (1ull << 40) + 5;
    ins.ways = 4;

    const arch::Instr back =
        arch::decodeInstr(arch::encodeInstr(ins));
    EXPECT_EQ(back.op, ins.op);
    EXPECT_EQ(back.phase, ins.phase);
    EXPECT_EQ(back.buf, ins.buf);
    EXPECT_EQ(back.addr, ins.addr);
    EXPECT_EQ(back.addr2, ins.addr2);
    EXPECT_EQ(back.bytes, ins.bytes);
    EXPECT_EQ(back.bytes2, ins.bytes2);
    EXPECT_EQ(back.m, ins.m);
    EXPECT_EQ(back.n, ins.n);
    EXPECT_EQ(back.k, ins.k);
    EXPECT_EQ(back.bitsA, ins.bitsA);
    EXPECT_EQ(back.bitsB, ins.bitsB);
    EXPECT_EQ(back.elems, ins.elems);
    EXPECT_EQ(back.ways, ins.ways);
}

TEST(IsaEncoding, WholeProgramRoundTrips)
{
    const auto ir = compiler::buildTinyCnn();
    const auto cfg = arch::CambriconQConfig::edge();
    const auto prog =
        compiler::generateProgram(ir, cfg, CodegenOptions{});
    for (const auto &ins : prog) {
        const arch::Instr back =
            arch::decodeInstr(arch::encodeInstr(ins));
        EXPECT_EQ(back.op, ins.op);
        EXPECT_EQ(back.addr, ins.addr);
        EXPECT_EQ(back.bytes, ins.bytes);
        EXPECT_EQ(back.elems, ins.elems);
        EXPECT_EQ(back.m, ins.m);
    }
}

// --------------------------------------------------- energy model

TEST(EnergyModel, SramEnergyGrowsWithCapacity)
{
    EXPECT_LT(energy::sramAccessPjPerByte(4 * 1024),
              energy::sramAccessPjPerByte(512 * 1024));
}

TEST(EnergyModel, BreakdownUsesActivityCounters)
{
    StatGroup act;
    act.counter("pe.macs.int8") = 1e6;
    act.counter("sfu.ops") = 1e3;
    act.counter("buf.NBin.capacity") = 256 * 1024;
    act.counter("buf.NBin.readBytes") = 1e6;
    const auto e = energy::buildBreakdown(act, 123.0, 456.0);
    EXPECT_GT(e.accPj, 1e6 * energy::op::kInt8Mul);
    EXPECT_GT(e.bufPj, 0.0);
    EXPECT_EQ(e.ddrDynamicPj, 123.0);
    EXPECT_EQ(e.ddrStandbyPj, 456.0);
    EXPECT_NEAR(e.totalPj(),
                e.accPj + e.bufPj + 123.0 + 456.0 + e.chipStaticPj,
                1e-9);
}

TEST(EnergyModel, EmptyActivityOnlyDram)
{
    StatGroup act;
    const auto e = energy::buildBreakdown(act, 10.0, 20.0);
    EXPECT_EQ(e.accPj, 0.0);
    EXPECT_EQ(e.bufPj, 0.0);
    EXPECT_EQ(e.totalPj(), 30.0);
}

TEST(EnergyModel, Int4MacsCheaperThanInt8)
{
    StatGroup a4, a8;
    a4.counter("pe.macs.int4") = 1e6;
    a8.counter("pe.macs.int8") = 1e6;
    EXPECT_LT(energy::buildBreakdown(a4, 0, 0).accPj,
              energy::buildBreakdown(a8, 0, 0).accPj);
}

TEST(EnergyModel, TableVIITotalsMatchPaper)
{
    const auto hw = energy::HwCharacteristics::cambriconQ();
    EXPECT_NEAR(hw.coreAreaMm2(), 8.69, 0.02);
    EXPECT_NEAR(hw.corePowerMw(), 891.37, 0.1);
    EXPECT_NEAR(hw.ndpAreaMm2(), 0.49, 0.001);
    EXPECT_NEAR(hw.ndpPowerMw(), 138.94, 0.01);
}

TEST(EnergyModel, DramAccessScalesWithWidth)
{
    EXPECT_GT(energy::op::dramAccess(32), energy::op::dramAccess(16));
    EXPECT_GT(energy::op::dramAccess(16), energy::op::dramAccess(8));
}

} // namespace
} // namespace cq
