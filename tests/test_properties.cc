/**
 * @file
 * Parameterized property tests (TEST_P sweeps) over the quantization
 * library, the PE-array datapath, the DRAM model and the functional
 * quantized GEMM: invariants that must hold across bit widths, block
 * sizes, distributions and configurations.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arch/pe_array.h"
#include "arch/quantized_gemm.h"
#include "arch/squ.h"
#include "common/rng.h"
#include "dram/dram_controller.h"
#include "quant/block_quant.h"
#include "quant/e2bqm.h"
#include "quant/qformat.h"
#include "tensor/tensor_ops.h"

namespace cq {
namespace {

Tensor
distTensor(int kind, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor x({n});
    switch (kind) {
      case 0: // gaussian
        x.fillGaussian(rng, 0.0f, 0.5f);
        break;
      case 1: // uniform
        x.fillUniform(rng, -2.0f, 2.0f);
        break;
      case 2: // long tail
        x.fillGaussian(rng, 0.0f, 0.01f);
        for (int i = 0; i < 8; ++i)
            x[rng.below(n)] = static_cast<float>(
                rng.gaussian(0.0, 1.0));
        break;
      case 3: // block-varying scales
        for (std::size_t i = 0; i < n; ++i)
            x[i] = static_cast<float>(rng.gaussian(
                0.0, std::pow(10.0, -3.0 + (i * 7 / n))));
        break;
      default:
        x.fill(0.0f);
    }
    return x;
}

// --------------------------------------------- quant round-trip sweep

class QuantRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(QuantRoundTrip, ErrorBoundedByHalfScale)
{
    const auto [bits, dist] = GetParam();
    const Tensor x = distTensor(dist, 4096, 101 + bits + dist);
    const quant::IntFormat fmt =
        quant::formatForMaxAbs(x.maxAbs(), bits);
    const Tensor q = quant::fakeQuantizeTensor(x, fmt);
    // Dynamic quantization never clips, so every element obeys the
    // half-LSB bound.
    EXPECT_LE(maxAbsDiff(x, q), fmt.scale / 2.0 + 1e-9);
}

TEST_P(QuantRoundTrip, ExtremesRepresentable)
{
    const auto [bits, dist] = GetParam();
    const Tensor x = distTensor(dist, 4096, 202 + bits + dist);
    const quant::IntFormat fmt =
        quant::formatForMaxAbs(x.maxAbs(), bits);
    // The max-magnitude element maps to +-qmax exactly.
    EXPECT_EQ(std::abs(quant::quantizeValue(x.maxAbs(), fmt)),
              fmt.qmax());
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndDistributions, QuantRoundTrip,
    ::testing::Combine(::testing::Values(4, 8, 12, 16),
                       ::testing::Values(0, 1, 2, 3)),
    [](const auto &info) {
        return "int" + std::to_string(std::get<0>(info.param)) +
               "_dist" + std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- LDQ block sweep

class LdqBlocks : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LdqBlocks, BlockScalesNeverExceedGlobal)
{
    const std::size_t block = GetParam();
    for (int dist = 0; dist < 4; ++dist) {
        const Tensor x = distTensor(dist, 8192, 300 + dist);
        const auto ldq = quant::ldqQuantize(x, block, 8);
        const auto dq = quant::dqQuantize(x, 8);
        for (const auto &fmt : ldq.formats())
            EXPECT_LE(fmt.scale, dq.formats()[0].scale + 1e-12);
    }
}

TEST_P(LdqBlocks, ReconstructionWithinLocalBound)
{
    const std::size_t block = GetParam();
    const Tensor x = distTensor(3, 8192, 301);
    const auto ldq = quant::ldqQuantize(x, block, 8);
    const Tensor back = ldq.dequantize();
    for (std::size_t i = 0; i < x.numel(); ++i) {
        EXPECT_LE(std::fabs(x[i] - back[i]),
                  ldq.formatOf(i).scale / 2.0 + 1e-9);
    }
}

TEST_P(LdqBlocks, CompressionMonotoneInBlockSize)
{
    const std::size_t block = GetParam();
    const std::size_t n = 1 << 20;
    EXPECT_LE(quant::ldqCompressionRatio(n, block),
              quant::ldqCompressionRatio(n, block * 2) + 1e-12);
    EXPECT_LE(quant::ldqCompressionRatio(n, block),
              quant::dqCompressionRatio(n));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, LdqBlocks,
                         ::testing::Values(32, 64, 256, 1024, 4096),
                         [](const auto &info) {
                             return "K" + std::to_string(info.param);
                         });

// ------------------------------------------------ bit-serial PE sweep

class BitSerial
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BitSerial, ExactForAllWidths)
{
    const auto [bits_a, bits_b] = GetParam();
    Rng rng(17);
    const std::int32_t max_a = (1 << (bits_a - 1)) - 1;
    const std::int32_t max_b = (1 << (bits_b - 1)) - 1;
    for (int trial = 0; trial < 500; ++trial) {
        const auto va = static_cast<std::int32_t>(
                            rng.below(2 * max_a + 1)) -
                        max_a;
        const auto vb = static_cast<std::int32_t>(
                            rng.below(2 * max_b + 1)) -
                        max_b;
        EXPECT_EQ(arch::PeArray::bitSerialMultiply(va, bits_a, vb,
                                                   bits_b),
                  static_cast<std::int64_t>(va) * vb);
    }
    // Boundary values.
    EXPECT_EQ(arch::PeArray::bitSerialMultiply(max_a, bits_a, max_b,
                                               bits_b),
              static_cast<std::int64_t>(max_a) * max_b);
    EXPECT_EQ(arch::PeArray::bitSerialMultiply(-max_a, bits_a, max_b,
                                               bits_b),
              -static_cast<std::int64_t>(max_a) * max_b);
}

INSTANTIATE_TEST_SUITE_P(
    WidthPairs, BitSerial,
    ::testing::Combine(::testing::Values(4, 8, 12, 16),
                       ::testing::Values(4, 8, 12, 16)),
    [](const auto &info) {
        return "a" + std::to_string(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- PE cycles sweep

struct MmDims
{
    std::uint64_t m, n, k;
};

class PeCycles : public ::testing::TestWithParam<MmDims>
{
};

TEST_P(PeCycles, NeverBeatsPeakThroughput)
{
    const auto d = GetParam();
    arch::CambriconQConfig cfg;
    arch::PeArray pe(cfg);
    for (int bits : {4, 8, 16}) {
        const double macs =
            static_cast<double>(arch::PeArray::macs(d.m, d.n, d.k));
        const double peak_per_cycle =
            4096.0 / ((bits / 4.0) * (bits / 4.0));
        const Tick cycles = pe.mmCycles(d.m, d.n, d.k, bits, bits);
        EXPECT_GE(static_cast<double>(cycles) * peak_per_cycle,
                  macs)
            << "bits=" << bits;
        // Utilization in (0, 1].
        const double u = pe.utilization(d.m, d.n, d.k, bits, bits);
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST_P(PeCycles, SystolicAlsoBounded)
{
    const auto d = GetParam();
    arch::CambriconQConfig cfg;
    cfg.systolicDataflow = true;
    cfg.peRows = 32;
    cfg.peCols = 32;
    cfg.peBits = 8;
    arch::PeArray pe(cfg);
    const double macs =
        static_cast<double>(arch::PeArray::macs(d.m, d.n, d.k));
    EXPECT_GE(
        static_cast<double>(pe.mmCycles(d.m, d.n, d.k, 8, 8)) * 1024.0,
        macs);
}

INSTANTIATE_TEST_SUITE_P(
    GemmShapes, PeCycles,
    ::testing::Values(MmDims{1, 1, 1}, MmDims{64, 64, 64},
                      MmDims{100, 100, 100}, MmDims{1, 4096, 4096},
                      MmDims{4096, 64, 576}, MmDims{32, 1000, 9216}),
    [](const auto &info) {
        return "m" + std::to_string(info.param.m) + "n" +
               std::to_string(info.param.n) + "k" +
               std::to_string(info.param.k);
    });

// --------------------------------------------------- DRAM sweep

class DramPatterns
    : public ::testing::TestWithParam<std::tuple<unsigned, int>>
{
};

TEST_P(DramPatterns, NeverExceedsPeakAndMonotone)
{
    const auto [channels, pattern] = GetParam();
    dram::DramController ctrl(dram::DramConfig::scaled(channels));
    Rng rng(7);
    Tick t = 0;
    Bytes moved = 0;
    for (int i = 0; i < 200; ++i) {
        Addr addr;
        switch (pattern) {
          case 0: // sequential
            addr = static_cast<Addr>(i) * 4096;
            break;
          case 1: // random
            addr = rng.next() % (1ull << 30);
            break;
          default: // bank-conflicting strided
            addr = static_cast<Addr>(i) * 8 * 2048 * channels;
            break;
        }
        const Tick done = ctrl.transfer(t, addr, 4096, i % 2 == 0);
        EXPECT_GE(done, t); // completion monotone
        t = done;
        moved += 4096;
    }
    const double achieved =
        static_cast<double>(moved) / static_cast<double>(t);
    EXPECT_LE(achieved,
              ctrl.config().peakBytesPerTick() * channels + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    ChannelsAndPatterns, DramPatterns,
    ::testing::Combine(::testing::Values(1u, 4u, 16u),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        return "ch" + std::to_string(std::get<0>(info.param)) +
               "_pat" + std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- SQU sweep

class SquWays : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SquWays, ThroughputInverseInWays)
{
    const unsigned ways = GetParam();
    arch::CambriconQConfig cfg;
    arch::Squ squ(cfg);
    const double t1 = squ.bytesPerCycle(1);
    const double tw = squ.bytesPerCycle(ways);
    // Never faster with more ways; at most `ways` times slower.
    EXPECT_LE(tw, t1 + 1e-12);
    EXPECT_GE(tw * ways + 1e-9, std::min<double>(
                                    t1 * 1.0,
                                    cfg.squQuantBytesPerCycle));
}

TEST_P(SquWays, StreamCyclesSuperlinearInBytes)
{
    const unsigned ways = GetParam();
    arch::CambriconQConfig cfg;
    arch::Squ squ(cfg);
    const Tick small = squ.streamCycles(16384, ways);
    const Tick big = squ.streamCycles(65536, ways);
    EXPECT_GE(big + 1, 4 * small / 2); // at least ~2x for 4x bytes
}

INSTANTIATE_TEST_SUITE_P(Ways, SquWays,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

// ------------------------------------------ E2BQM metric consistency

class E2bqmMetrics
    : public ::testing::TestWithParam<quant::ErrorMetric>
{
};

TEST_P(E2bqmMetrics, WinnerMinimizesConfiguredMetric)
{
    const auto metric = GetParam();
    for (int dist = 0; dist < 4; ++dist) {
        const Tensor x = distTensor(dist, 2048, 900 + dist);
        auto cfg = quant::E2bqmConfig::clippingLadder(8, metric);
        const auto result = quant::e2bqmQuantize(x, cfg);
        // Compare magnitudes (MeanBias is signed) and allow the
        // arbitration tolerance: a near-tie may go to fewer bits.
        for (const auto &cand : result.candidates)
            EXPECT_LE(std::fabs(result.best().error),
                      std::fabs(cand.error) *
                              (1.0 + quant::kArbitrationRelEps) +
                          1e-12);
        // The reported error matches a recomputation on the winner.
        const Tensor deq = result.best().dequantize(x.shape());
        quant::ErrorStat stat;
        for (std::size_t i = 0; i < x.numel(); ++i)
            stat.observe(x[i], deq[i]);
        EXPECT_NEAR(result.best().error, stat.value(metric),
                    1e-6 + 1e-6 * std::fabs(result.best().error));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, E2bqmMetrics,
    ::testing::Values(quant::ErrorMetric::Rectilinear,
                      quant::ErrorMetric::CosineDistance,
                      quant::ErrorMetric::MeanBias,
                      quant::ErrorMetric::MaxError),
    [](const auto &info) {
        std::string name = quant::errorMetricName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// --------------------------------- functional quantized GEMM datapath

class QuantizedGemm
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>>
{
};

TEST_P(QuantizedGemm, TracksFp32WithinQuantizationNoise)
{
    const auto [bits, block_k] = GetParam();
    Rng rng(55);
    Tensor a({12, 96});
    Tensor b({96, 8});
    a.fillGaussian(rng, 0.0f, 0.5f);
    b.fillGaussian(rng, 0.0f, 0.5f);

    arch::QuantizedGemmOptions opts;
    opts.bits = bits;
    opts.blockK = block_k;
    const Tensor got = arch::quantizedMatmul(a, b, opts);
    const Tensor want = matmul(a, b);

    // Error budget: per-product error ~ |a|*db + |b|*da summed over
    // k; bound loosely via the operand scales.
    const double rel =
        rmse(got, want) /
        std::max(1e-9, std::sqrt(static_cast<double>(
                           want.sumSquares() / want.numel())));
    const double budget = bits >= 12 ? 2e-3 : (bits == 8 ? 2e-2
                                                         : 0.35);
    EXPECT_LT(rel, budget) << "bits=" << bits
                           << " blockK=" << block_k;
}

TEST_P(QuantizedGemm, FinerBlocksNeverHurtMuch)
{
    const auto [bits, block_k] = GetParam();
    if (block_k >= 96)
        GTEST_SKIP() << "needs a finer block than the k extent";
    Rng rng(56);
    Tensor a({8, 96});
    Tensor b({96, 8});
    // Segment-varying magnitudes: fine blocks must win clearly.
    for (std::size_t i = 0; i < a.numel(); ++i)
        a[i] = static_cast<float>(
            rng.gaussian(0.0, i % 96 < 48 ? 0.001 : 1.0));
    b.fillGaussian(rng, 0.0f, 0.5f);

    arch::QuantizedGemmOptions fine{bits, block_k};
    arch::QuantizedGemmOptions coarse{bits, 96};
    const Tensor want = matmul(a, b);
    EXPECT_LE(rmse(arch::quantizedMatmul(a, b, fine), want),
              rmse(arch::quantizedMatmul(a, b, coarse), want) * 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndBlocks, QuantizedGemm,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(std::size_t(16),
                                         std::size_t(32),
                                         std::size_t(96))),
    [](const auto &info) {
        return "int" + std::to_string(std::get<0>(info.param)) +
               "_K" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace cq
