/**
 * @file
 * Multi-chip data-parallel training tests: the LDQ wire codec, ring
 * all-reduce correctness and bitwise replica identity, interconnect
 * fault handling (corruption, drops, silence, stragglers,
 * cancellation), coordinator recovery semantics (survivors continue
 * from the last consistent step), elastic shrink/grow resume, thread
 * -width determinism, the multi-shard manifest, and a seeded chaos
 * sweep proving zero hangs and zero lost steps across fault mixes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/fileutil.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "dist/collective.h"
#include "dist/dist_harness.h"
#include "dist/dist_trainer.h"
#include "dist/interconnect.h"
#include "nn/guard/shard_manifest.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/obs_server.h"
#include "obs/trace.h"

namespace cq {
namespace {

using dist::ChipFailure;
using dist::ChipFaultPlan;
using dist::CollectiveConfig;
using dist::CollectiveOutcome;
using dist::CollectiveStatus;
using dist::DistHarnessConfig;
using dist::DistHarnessResult;
using dist::Interconnect;
using dist::LinkConfig;
using dist::SendOutcome;

std::string
freshDistDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    for (const std::string &sub : listDir(dir)) {
        const std::string p = dir + "/" + sub;
        for (const std::string &f : listDir(p))
            std::remove((p + "/" + f).c_str());
        ::rmdir(p.c_str());
        std::remove(p.c_str());
    }
    ::rmdir(dir.c_str());
    EXPECT_TRUE(ensureDir(dir));
    return dir;
}

std::vector<float>
randomGrad(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> g(n);
    for (std::size_t i = 0; i < n; ++i)
        g[i] = static_cast<float>(rng.gaussian() * 0.1);
    return g;
}

// ------------------------------------------------------------- codec

TEST(LdqWire, RoundTripIsCloseAndDeterministic)
{
    const std::vector<float> x = randomGrad(517, 42);
    const auto bytes = dist::encodeLdqChunk(x.data(), x.size(), 64, 8);
    const auto again = dist::encodeLdqChunk(x.data(), x.size(), 64, 8);
    EXPECT_EQ(bytes, again);
    std::vector<float> back;
    ASSERT_TRUE(dist::decodeLdqChunk(bytes, back));
    ASSERT_EQ(back.size(), x.size());
    double maxAbs = 0.0, maxErr = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        maxAbs = std::max(maxAbs, std::abs(double(x[i])));
        maxErr = std::max(maxErr, std::abs(double(x[i]) - back[i]));
    }
    // 8-bit LDQ block quantization: error bounded by ~scale/2 per
    // block; a generous global bound suffices here.
    EXPECT_LT(maxErr, maxAbs / 50.0);
}

TEST(LdqWire, EmptyChunkRoundTrips)
{
    const auto bytes = dist::encodeLdqChunk(nullptr, 0, 64, 8);
    std::vector<float> back{1.0f};
    ASSERT_TRUE(dist::decodeLdqChunk(bytes, back));
    EXPECT_TRUE(back.empty());
}

TEST(LdqWire, MalformedBuffersAreRejectedNotCrashed)
{
    const std::vector<float> x = randomGrad(100, 7);
    auto bytes = dist::encodeLdqChunk(x.data(), x.size(), 64, 8);
    std::vector<float> out;
    // Truncations at every boundary.
    for (std::size_t cut : {std::size_t(0), std::size_t(3),
                            std::size_t(15), bytes.size() - 1}) {
        std::vector<std::uint8_t> t(bytes.begin(),
                                    bytes.begin() + cut);
        EXPECT_FALSE(dist::decodeLdqChunk(t, out));
    }
    // Bad magic.
    auto bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(dist::decodeLdqChunk(bad, out));
    // Trailing junk.
    bad = bytes;
    bad.push_back(0);
    EXPECT_FALSE(dist::decodeLdqChunk(bad, out));
}

// ------------------------------------------------------ interconnect

TEST(Interconnect, CleanLinkDeliversVerbatim)
{
    Interconnect net(4, LinkConfig{});
    const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
    std::vector<std::uint8_t> got;
    const SendOutcome s = net.send(0, 1, msg, got, nullptr);
    EXPECT_TRUE(s.delivered);
    EXPECT_EQ(got, msg);
    EXPECT_EQ(s.retransmits, 0u);
    EXPECT_GT(s.simUs, 0.0);
}

TEST(Interconnect, CorruptionIsDetectedAndRetransmitted)
{
    LinkConfig link;
    link.corruptFlipsPerMbit = 12.0; // ~1 flip per 3 messages
    link.maxRetransmits = 20;        // corruption, not eviction
    Interconnect net(2, link);
    const std::vector<std::uint8_t> msg(4096, 0xAB);
    std::vector<std::uint8_t> got;
    unsigned rejects = 0;
    for (int i = 0; i < 50; ++i) {
        const SendOutcome s = net.send(0, 1, msg, got, nullptr);
        ASSERT_TRUE(s.delivered);
        // CRC caught every corrupt frame: the delivered copy is
        // always intact, however many attempts it took.
        EXPECT_EQ(got, msg);
        rejects += s.crcRejects;
    }
    EXPECT_GT(rejects, 0u);
}

TEST(Interconnect, SilentPeerExhaustsBudget)
{
    Interconnect net(2, LinkConfig{});
    net.setSilent(0, true);
    const std::vector<std::uint8_t> msg{9};
    std::vector<std::uint8_t> got;
    const SendOutcome s = net.send(0, 1, msg, got, nullptr);
    EXPECT_FALSE(s.delivered);
    EXPECT_GT(s.simUs, 0.0); // timeouts were charged
}

TEST(Interconnect, CancelTokenPolledInsideWaitLoop)
{
    Interconnect net(2, LinkConfig{});
    net.setSilent(0, true); // would spin through the whole budget
    CancelToken cancel;
    cancel.cancel(CancelReason::Shutdown);
    const std::vector<std::uint8_t> msg{9};
    std::vector<std::uint8_t> got;
    const SendOutcome s = net.send(0, 1, msg, got, &cancel);
    EXPECT_TRUE(s.cancelled);
    EXPECT_FALSE(s.delivered);
    EXPECT_EQ(s.retransmits, 0u); // fired before the first attempt
}

// -------------------------------------------------------- all-reduce

TEST(RingAllReduce, MatchesSerialMeanAndIsBitwiseReplicated)
{
    const std::size_t R = 4, n = 1000;
    std::vector<std::vector<float>> grads;
    std::vector<float> serial(n, 0.0f);
    for (std::size_t c = 0; c < R; ++c) {
        grads.push_back(randomGrad(n, 100 + c));
        // Pre-weighted equal shards: weight 1/R each.
        for (std::size_t i = 0; i < n; ++i) {
            grads[c][i] /= static_cast<float>(R);
            serial[i] += grads[c][i];
        }
    }
    std::vector<std::vector<float> *> ptrs;
    std::vector<std::size_t> ring;
    for (std::size_t c = 0; c < R; ++c) {
        ptrs.push_back(&grads[c]);
        ring.push_back(c);
    }
    Interconnect net(R, LinkConfig{});
    const CollectiveOutcome out =
        dist::ringAllReduceLdq(ptrs, ring, net, CollectiveConfig{});
    ASSERT_EQ(out.status, CollectiveStatus::Ok);
    EXPECT_GT(out.bytesOnWire, 0u);
    EXPECT_GT(out.fp32Bytes, out.bytesOnWire / 2); // compressed wire

    // Bitwise identical across replicas (the all-gather forwards one
    // owner-encoded byte stream).
    for (std::size_t c = 1; c < R; ++c)
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(grads[0][i], grads[c][i])
                << "replica " << c << " diverges at " << i;

    // Close to the exact FP32 sum (one quantize-dequantize per hop).
    double maxAbs = 0.0, maxErr = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        maxAbs = std::max(maxAbs, std::abs(double(serial[i])));
        maxErr =
            std::max(maxErr, std::abs(double(serial[i]) - grads[0][i]));
    }
    EXPECT_LT(maxErr, std::max(1e-6, maxAbs / 10.0));
}

TEST(RingAllReduce, CorruptedLinksStillProduceIdenticalReplicas)
{
    const std::size_t R = 3, n = 700;
    // Two runs with byte-identical inputs: one clean link, one noisy
    // link. CRC + retransmit must make the results bitwise equal.
    std::vector<std::vector<float>> a, b;
    for (std::size_t c = 0; c < R; ++c) {
        a.push_back(randomGrad(n, 300 + c));
        b.push_back(a.back());
    }
    const auto run = [&](std::vector<std::vector<float>> &g,
                         double flips) {
        std::vector<std::vector<float> *> ptrs;
        std::vector<std::size_t> ring;
        for (std::size_t c = 0; c < R; ++c) {
            ptrs.push_back(&g[c]);
            ring.push_back(c);
        }
        LinkConfig link;
        link.corruptFlipsPerMbit = flips;
        link.maxRetransmits = 20;
        CollectiveConfig cc;
        cc.deadlineUs = 0.0; // retransmits may be slow; no deadline
        Interconnect net(R, link);
        return dist::ringAllReduceLdq(ptrs, ring, net, cc);
    };
    ASSERT_EQ(run(a, 0.0).status, CollectiveStatus::Ok);
    const CollectiveOutcome noisy = run(b, 150.0);
    ASSERT_EQ(noisy.status, CollectiveStatus::Ok);
    EXPECT_GT(noisy.retransmits, 0u);
    for (std::size_t c = 0; c < R; ++c)
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(a[c][i], b[c][i]);
}

TEST(RingAllReduce, TotalDropClassifiesSenderFailed)
{
    const std::size_t R = 3, n = 64;
    std::vector<std::vector<float>> grads;
    for (std::size_t c = 0; c < R; ++c)
        grads.push_back(randomGrad(n, c));
    std::vector<std::vector<float> *> ptrs;
    std::vector<std::size_t> ring;
    for (std::size_t c = 0; c < R; ++c) {
        ptrs.push_back(&grads[c]);
        ring.push_back(c);
    }
    LinkConfig link;
    link.dropProb = 1.0;
    Interconnect net(R, link);
    CollectiveConfig cc;
    cc.deadlineUs = 0.0;
    const CollectiveOutcome out =
        dist::ringAllReduceLdq(ptrs, ring, net, cc);
    ASSERT_EQ(out.status, CollectiveStatus::ChipFailed);
    ASSERT_EQ(out.failed.size(), 1u);
    EXPECT_STREQ(out.failureKind, "silent");
}

// ------------------------------------------------------- coordinator

DistHarnessConfig
baseConfig(std::uint64_t seed, std::size_t chips, std::uint64_t steps)
{
    DistHarnessConfig cfg;
    cfg.seed = seed;
    cfg.chips = chips;
    cfg.steps = steps;
    cfg.globalBatch = 32;
    return cfg;
}

TEST(DistTrainer, FaultFreeRunIsReplicatedAndLearns)
{
    const DistHarnessResult r =
        dist::runDistHarness(baseConfig(11, 4, 150));
    EXPECT_EQ(r.train.stepsCompleted, 150u);
    EXPECT_EQ(r.train.survivors, 4u);
    EXPECT_TRUE(r.train.failures.empty());
    EXPECT_TRUE(r.train.replicasIdentical);
    EXPECT_GT(r.accuracy, 0.85);
    EXPECT_GT(r.train.bytesOnWire, 0u);
}

TEST(DistTrainer, DeterministicAcrossRunsAndThreadWidths)
{
    const DistHarnessResult a =
        dist::runDistHarness(baseConfig(23, 4, 30));
    const DistHarnessResult b =
        dist::runDistHarness(baseConfig(23, 4, 30));
    EXPECT_EQ(a.train.mastersCrc, b.train.mastersCrc);

    // CQ_THREADS invariance: cap the pool width to 1 and to 4 — the
    // bitwise result must not move (ISSUE acceptance).
    std::uint32_t crc1 = 0, crc4 = 0;
    {
        CallerWidthCapScope cap(1);
        crc1 = dist::runDistHarness(baseConfig(23, 4, 30))
                   .train.mastersCrc;
    }
    {
        CallerWidthCapScope cap(4);
        crc4 = dist::runDistHarness(baseConfig(23, 4, 30))
                   .train.mastersCrc;
    }
    EXPECT_EQ(crc1, a.train.mastersCrc);
    EXPECT_EQ(crc4, a.train.mastersCrc);
}

TEST(DistTrainer, NoisyWireTrainsBitwiseIdenticalToCleanWire)
{
    DistHarnessConfig clean = baseConfig(31, 3, 25);
    DistHarnessConfig noisy = clean;
    noisy.link.corruptFlipsPerMbit = 50.0;
    noisy.collective.deadlineUs = 0.0; // retransmits are not failures
    const DistHarnessResult a = dist::runDistHarness(clean);
    const DistHarnessResult b = dist::runDistHarness(noisy);
    EXPECT_GT(b.train.retransmits, 0u);
    EXPECT_TRUE(b.train.failures.empty());
    // CRC'd retransmission makes corruption invisible to training.
    EXPECT_EQ(a.train.mastersCrc, b.train.mastersCrc);
}

TEST(DistTrainer, CrashMidRunSurvivorsFinishAndStayAccurate)
{
    DistHarnessConfig cfg = baseConfig(47, 4, 150);
    cfg.faults.resize(4);
    cfg.faults[2].crashAtStep = 50;
    const DistHarnessResult r = dist::runDistHarness(cfg);
    EXPECT_EQ(r.train.stepsCompleted, 150u); // no accepted step lost
    EXPECT_EQ(r.train.survivors, 3u);
    ASSERT_EQ(r.train.failures.size(), 1u);
    EXPECT_EQ(r.train.failures[0].chip, 2u);
    EXPECT_EQ(r.train.failures[0].kind, ChipFailure::Crash);
    EXPECT_TRUE(r.train.replicasIdentical);

    const DistHarnessResult clean =
        dist::runDistHarness(baseConfig(47, 4, 150));
    EXPECT_GT(r.accuracy, 0.8);
    EXPECT_NEAR(r.accuracy, clean.accuracy, 0.08);
}

TEST(DistTrainer, HangMidCollectiveIsClassifiedSilentAndEvicted)
{
    DistHarnessConfig cfg = baseConfig(53, 4, 150);
    cfg.faults.resize(4);
    cfg.faults[1].hangAtStep = 60;
    const DistHarnessResult r = dist::runDistHarness(cfg);
    EXPECT_EQ(r.train.stepsCompleted, 150u);
    EXPECT_EQ(r.train.survivors, 3u);
    ASSERT_EQ(r.train.failures.size(), 1u);
    EXPECT_EQ(r.train.failures[0].chip, 1u);
    EXPECT_EQ(r.train.failures[0].kind, ChipFailure::Silent);
    EXPECT_GE(r.train.stepsRetried, 1u);
    EXPECT_TRUE(r.train.replicasIdentical);
    EXPECT_GT(r.accuracy, 0.8);
}

TEST(DistTrainer, PersistentStragglerIsEvictedByDeadline)
{
    DistHarnessConfig cfg = baseConfig(59, 4, 150);
    cfg.faults.resize(4);
    cfg.faults[3].stragglerFromStep = 50;
    const DistHarnessResult r = dist::runDistHarness(cfg);
    EXPECT_EQ(r.train.stepsCompleted, 150u);
    EXPECT_EQ(r.train.survivors, 3u);
    ASSERT_EQ(r.train.failures.size(), 1u);
    EXPECT_EQ(r.train.failures[0].chip, 3u);
    EXPECT_EQ(r.train.failures[0].kind, ChipFailure::Straggler);
    EXPECT_TRUE(r.train.replicasIdentical);
    EXPECT_GT(r.accuracy, 0.8);
}

TEST(DistTrainer, TwoChipLossDegradesToSingleSurvivor)
{
    DistHarnessConfig cfg = baseConfig(61, 3, 150);
    cfg.faults.resize(3);
    cfg.faults[0].crashAtStep = 20;
    cfg.faults[2].hangAtStep = 70;
    const DistHarnessResult r = dist::runDistHarness(cfg);
    // The last chip standing trains solo (ring of one: no wire).
    EXPECT_EQ(r.train.stepsCompleted, 150u);
    EXPECT_EQ(r.train.survivors, 1u);
    EXPECT_EQ(r.train.failures.size(), 2u);
    EXPECT_TRUE(r.train.replicasIdentical);
    EXPECT_GT(r.accuracy, 0.75);
}

TEST(DistTrainer, PreCancelledTokenStopsBeforeAnyStep)
{
    CancelToken cancel;
    cancel.cancel(CancelReason::User);
    DistHarnessConfig cfg = baseConfig(67, 2, 50);
    cfg.cancel = &cancel;
    const DistHarnessResult r = dist::runDistHarness(cfg);
    EXPECT_TRUE(r.train.cancelled);
    EXPECT_EQ(r.train.stepsCompleted, 0u);
}

// ------------------------------------------------- elastic resume

TEST(DistTrainer, ShrinkResumeEightToFourConverges)
{
    const std::string root = freshDistDir("dist_shrink");
    DistHarnessConfig first = baseConfig(71, 8, 60);
    first.ckptRoot = root;
    first.ckptEvery = 30;
    const DistHarnessResult a = dist::runDistHarness(first);
    EXPECT_EQ(a.train.stepsCompleted, 60u);

    DistHarnessConfig second = baseConfig(71, 4, 150);
    second.ckptRoot = root;
    second.resume = true;
    const DistHarnessResult b = dist::runDistHarness(second);
    EXPECT_TRUE(b.train.resumed);
    EXPECT_EQ(b.train.resumedStep, 60u);
    EXPECT_EQ(b.train.stepsCompleted, 150u);
    EXPECT_TRUE(b.train.replicasIdentical);

    // Convergence-equivalence: an uninterrupted fixed-count run on
    // the same seed reaches statistically equivalent accuracy (the
    // chunking changes with the chip count, so equivalence is in
    // accuracy, not bits).
    const DistHarnessResult clean =
        dist::runDistHarness(baseConfig(71, 4, 150));
    EXPECT_GT(b.accuracy, 0.8);
    EXPECT_NEAR(b.accuracy, clean.accuracy, 0.08);
}

TEST(DistTrainer, GrowResumeFourToEightConverges)
{
    const std::string root = freshDistDir("dist_grow");
    DistHarnessConfig first = baseConfig(73, 4, 60);
    first.ckptRoot = root;
    first.ckptEvery = 30;
    const DistHarnessResult a = dist::runDistHarness(first);
    EXPECT_EQ(a.train.stepsCompleted, 60u);

    DistHarnessConfig second = baseConfig(73, 8, 150);
    second.ckptRoot = root;
    second.resume = true;
    const DistHarnessResult b = dist::runDistHarness(second);
    EXPECT_TRUE(b.train.resumed);
    EXPECT_EQ(b.train.resumedStep, 60u);
    EXPECT_EQ(b.train.stepsCompleted, 150u);
    EXPECT_TRUE(b.train.replicasIdentical);
    EXPECT_GT(b.accuracy, 0.8);
}

TEST(DistTrainer, CheckpointWavePublishesShardManifest)
{
    const std::string root = freshDistDir("dist_manifest");
    DistHarnessConfig cfg = baseConfig(79, 3, 20);
    cfg.ckptRoot = root;
    cfg.ckptEvery = 10;
    dist::runDistHarness(cfg);
    nn::guard::ShardManifest m;
    ASSERT_TRUE(nn::guard::readShardManifest(root, m));
    EXPECT_EQ(m.chipCount, 3u);
    EXPECT_EQ(m.step, 20u);
    ASSERT_EQ(m.entries.size(), 3u);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(m.entries[c].chip, c);
        EXPECT_EQ(m.entries[c].step, 20u);
        EXPECT_EQ(m.entries[c].dir, dist::chipDirName(c));
    }

    // A flipped byte in the body must fail the CRC.
    const std::string path = nn::guard::shardManifestPath(root);
    FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 18, SEEK_SET);
    const int ch = std::fgetc(f);
    std::fseek(f, 18, SEEK_SET);
    std::fputc(ch ^ 0x01, f);
    std::fclose(f);
    nn::guard::ShardManifest bad;
    EXPECT_FALSE(nn::guard::readShardManifest(root, bad));
}

// ------------------------------------------------------ chaos sweep

TEST(DistChaos, TwentyTrialsNoHangsNoLostSteps)
{
    // Seeded sweep over fault mixes on 4-chip runs. Guarantees under
    // test: every trial terminates (the whole stack is simulated
    // time — an infinite wait is impossible by construction), the
    // target step count is reached whenever at least one chip
    // survives, survivors hold bitwise-identical masters, and
    // recovery still learns.
    const int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(9000 + static_cast<std::uint64_t>(trial) * 131);
        DistHarnessConfig cfg =
            baseConfig(1000 + static_cast<std::uint64_t>(trial), 4,
                       24);
        cfg.faults.resize(4);
        // One planned fault per trial, rotating kind and victim;
        // plus background wire noise on every third trial.
        const std::size_t victim = rng.below(4);
        const std::uint64_t at = 3 + rng.below(18);
        switch (trial % 3) {
          case 0: cfg.faults[victim].crashAtStep = at; break;
          case 1: cfg.faults[victim].hangAtStep = at; break;
          default: cfg.faults[victim].stragglerFromStep = at; break;
        }
        if (trial % 3 == 0) {
            cfg.link.corruptFlipsPerMbit = 50.0;
            cfg.link.dropProb = 0.01;
        }
        const DistHarnessResult r = dist::runDistHarness(cfg);
        ASSERT_EQ(r.train.stepsCompleted, 24u)
            << "trial " << trial << " lost accepted steps";
        ASSERT_GE(r.train.survivors, 3u) << "trial " << trial;
        ASSERT_EQ(r.train.failures.size(), 1u) << "trial " << trial;
        ASSERT_TRUE(r.train.replicasIdentical) << "trial " << trial;
    }
}

// ------------------------------------------------ live observability

TEST(DistObs, ScrapedRunMatchesDarkRunBitwiseAndEmitsChipTracks)
{
    const DistHarnessResult dark =
        dist::runDistHarness(baseConfig(91, 4, 30));
    ASSERT_EQ(dark.train.stepsCompleted, 30u);
    ASSERT_TRUE(dark.train.replicasIdentical);

    auto &session = obs::TraceSession::instance();
    auto &hist = obs::MetricRegistry::instance().histogram(
        "dist.allreduce_latency_us");
    const std::uint64_t histBefore = hist.count();
    session.clear();
    session.setEnabled(true);
    obs::ObsServer server;
    obs::ObsServerConfig scfg; // ephemeral port
    ASSERT_TRUE(server.start(scfg));
    std::atomic<bool> stopScrape{false};
    std::thread scraper([&] {
        const char *paths[] = {"/metrics", "/trace?last_ms=50"};
        int i = 0;
        while (!stopScrape.load()) {
            int status = 0;
            std::string body;
            obs::httpGet(server.port(), paths[i++ % 2], status, body,
                         1000);
            ::usleep(5000);
        }
    });
    const DistHarnessResult lit =
        dist::runDistHarness(baseConfig(91, 4, 30));
    stopScrape.store(true);
    scraper.join();
    const std::string json = session.chromeTraceJson();
    session.setEnabled(false);
    session.clear();
    server.stop();

    // A run scraped while training computes bitwise the same masters
    // as the dark one: the obs plane is output-only, even live.
    EXPECT_EQ(lit.train.mastersCrc, dark.train.mastersCrc);
    EXPECT_TRUE(lit.train.replicasIdentical);
    EXPECT_EQ(lit.train.stepsCompleted, 30u);

    // The trace renders the chips as parallel per-chip tracks (pid 3)
    // with attributed chip-step and all-reduce hop spans.
    EXPECT_NE(json.find("\"cambricon-q chips\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"chip-0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"chip-3\"}"),
              std::string::npos);
    EXPECT_NE(json.find("dist.allreduce.hop"), std::string::npos);
    EXPECT_NE(json.find("dist.chip_step"), std::string::npos);

    // And the all-reduce latency histogram observed the run.
    EXPECT_GT(hist.count(), histBefore);
}

} // namespace
} // namespace cq
