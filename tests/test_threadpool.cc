/**
 * @file
 * Tests of the deterministic thread pool: the parallelFor contract
 * (coverage, disjointness, grain, nesting, exceptions) and the
 * bitwise 1-vs-N-thread determinism guarantee of every parallelized
 * kernel (GEMM variants, elementwise ops, im2col/col2im, E2BQM/HQT,
 * and the functional quantized GEMM).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/quantized_gemm.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "quant/e2bqm.h"
#include "tensor/tensor_ops.h"

namespace cq {
namespace {

/** Run @p make under 1 thread and under @p threads, expect bitwise
 *  identical tensors (Tensor::operator== is exact float equality). */
template <typename Fn>
void
expectBitwiseEqualAcrossThreads(Fn make, unsigned threads = 8)
{
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(1);
    const Tensor serial = make();
    pool.setNumThreads(threads);
    const Tensor parallel = make();
    pool.setNumThreads(0); // back to the CQ_THREADS / hardware default
    EXPECT_TRUE(serial == parallel);
}

// ------------------------------------------------------------- pool API

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(0, hits.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeNeverCalls)
{
    bool called = false;
    parallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
    parallelFor(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, GrainKeepsSmallRangesSerial)
{
    // A range below 2 * grain must run as one inline chunk.
    int calls = 0;
    parallelFor(0, 100, 64, [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 100u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ChunksAreContiguousAndOrdered)
{
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex m;
    parallelFor(0, 10000, 1, [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    std::size_t expect = 0;
    for (const auto &[lo, hi] : chunks) {
        EXPECT_EQ(lo, expect);
        EXPECT_LT(lo, hi);
        expect = hi;
    }
    EXPECT_EQ(expect, 10000u);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    std::atomic<int> total{0};
    parallelFor(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            // The nested region must execute (inline) exactly once
            // per outer index without deadlocking.
            parallelFor(0, 4, 1, [&](std::size_t nlo, std::size_t nhi) {
                total.fetch_add(static_cast<int>(nhi - nlo));
            });
        }
    });
    EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, CallerWidthCapLimitsChunkFanOut)
{
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(8);
    const auto countChunks = [] {
        std::atomic<int> chunks{0};
        parallelFor(0, 10000, 1,
                    [&](std::size_t, std::size_t) { ++chunks; });
        return chunks.load();
    };
    EXPECT_GT(countChunks(), 2); // uncapped: full fan-out
    {
        CallerWidthCapScope cap(2);
        EXPECT_EQ(ThreadPool::callerWidthCap(), 2u);
        EXPECT_LE(countChunks(), 2);
    }
    // RAII restore: the cap is gone once the scope closes.
    EXPECT_EQ(ThreadPool::callerWidthCap(), 0u);
    EXPECT_GT(countChunks(), 2);
    pool.setNumThreads(0);
}

TEST(ThreadPool, CallerWidthCapOfOneRunsInlineOnCaller)
{
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(8);
    CallerWidthCapScope cap(1);
    const std::thread::id self = std::this_thread::get_id();
    std::atomic<int> offThread{0};
    parallelFor(0, 10000, 1, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() != self)
            ++offThread;
    });
    // Degraded jobs must not touch the shared workers at all.
    EXPECT_EQ(offThread.load(), 0);
    pool.setNumThreads(0);
}

TEST(ThreadPool, CallerWidthCapScopesNestAndRestore)
{
    CallerWidthCapScope outer(4);
    EXPECT_EQ(ThreadPool::callerWidthCap(), 4u);
    {
        CallerWidthCapScope inner(2);
        EXPECT_EQ(ThreadPool::callerWidthCap(), 2u);
    }
    EXPECT_EQ(ThreadPool::callerWidthCap(), 4u);
}

TEST(Determinism, CappedWidthBitwiseMatchesUncapped)
{
    // The degradation story rests on this: shrinking a job's thread
    // grant must not change its numbers.
    Rng rng(99);
    Tensor a({64, 96});
    Tensor b({96, 64});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(8);
    const Tensor full = matmul(a, b);
    Tensor capped;
    {
        CallerWidthCapScope cap(2);
        capped = matmul(a, b);
    }
    Tensor inline1;
    {
        CallerWidthCapScope cap(1);
        inline1 = matmul(a, b);
    }
    pool.setNumThreads(0);
    EXPECT_TRUE(full == capped);
    EXPECT_TRUE(full == inline1);
}

TEST(ThreadPool, PropagatesExceptions)
{
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(4);
    EXPECT_THROW(
        parallelFor(0, 1000, 1,
                    [&](std::size_t lo, std::size_t) {
                        if (lo == 0)
                            throw std::runtime_error("chunk failed");
                    }),
        std::runtime_error);
    pool.setNumThreads(0);
}

TEST(ThreadPool, PropagatesWorkerLaneExceptions)
{
    // Throw only from a chunk that a worker (not the caller, which
    // owns chunk 0) executes: the error must still cross threads.
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(4);
    EXPECT_THROW(
        parallelFor(0, 1000, 1,
                    [&](std::size_t lo, std::size_t) {
                        if (lo != 0)
                            throw std::runtime_error("worker lane");
                    }),
        std::runtime_error);
    pool.setNumThreads(0);
}

TEST(ThreadPool, LowestChunkExceptionWinsDeterministically)
{
    // Every chunk throws a distinct message; the caller must always
    // observe the lowest-indexed chunk's exception regardless of
    // worker scheduling. Repeat to give racier orderings a chance.
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(4);
    for (int rep = 0; rep < 50; ++rep) {
        std::string caught;
        try {
            parallelFor(0, 1000, 1,
                        [&](std::size_t lo, std::size_t) {
                            throw std::runtime_error(
                                "chunk@" + std::to_string(lo));
                        });
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        EXPECT_EQ(caught, "chunk@0");
    }
    pool.setNumThreads(0);
}

TEST(ThreadPool, UsableAfterException)
{
    // A throw must not poison the pool: the next job still covers the
    // whole range exactly once and reports no stale error.
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(4);
    EXPECT_THROW(parallelFor(0, 1000, 1,
                             [&](std::size_t, std::size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    std::vector<std::atomic<int>> hits(1000);
    EXPECT_NO_THROW(
        parallelFor(0, hits.size(), 1,
                    [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i)
                            hits[i].fetch_add(1);
                    }));
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    pool.setNumThreads(0);
}

TEST(ThreadPool, SetNumThreadsRoundTrips)
{
    auto &pool = ThreadPool::instance();
    pool.setNumThreads(3);
    EXPECT_EQ(pool.numThreads(), 3u);
    pool.setNumThreads(0);
    EXPECT_GE(pool.numThreads(), 1u);
}

// ------------------------------------------- kernel determinism (1 vs N)

TEST(Determinism, MatmulBitwiseIdentical)
{
    Rng rng(21);
    Tensor a({65, 47}), b({47, 53});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    expectBitwiseEqualAcrossThreads([&] { return matmul(a, b); });
}

TEST(Determinism, MatmulTransABitwiseIdentical)
{
    Rng rng(22);
    Tensor a({37, 61}), b({37, 29});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    expectBitwiseEqualAcrossThreads([&] { return matmulTransA(a, b); });
}

TEST(Determinism, MatmulTransBBitwiseIdentical)
{
    Rng rng(23);
    Tensor a({41, 33}), b({59, 33});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    expectBitwiseEqualAcrossThreads([&] { return matmulTransB(a, b); });
}

TEST(Determinism, ElementwiseBitwiseIdentical)
{
    Rng rng(24);
    Tensor a({40000}), b({40000});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    expectBitwiseEqualAcrossThreads([&] { return add(a, b); });
    expectBitwiseEqualAcrossThreads([&] { return mul(a, b); });
    expectBitwiseEqualAcrossThreads([&] { return scale(a, 0.37f); });
    expectBitwiseEqualAcrossThreads([&] {
        Tensor acc = a;
        accumulate(acc, b, 1.5f);
        return acc;
    });
}

TEST(Determinism, Im2colCol2imBitwiseIdentical)
{
    Rng rng(25);
    Conv2dGeometry g;
    g.inChannels = 3;
    g.outChannels = 4;
    g.kernelH = g.kernelW = 3;
    g.stride = 1;
    g.pad = 1;
    Tensor x({2, 3, 17, 19});
    x.fillGaussian(rng, 0.0f, 1.0f);
    expectBitwiseEqualAcrossThreads([&] { return im2col(x, g); });

    const Tensor cols = im2col(x, g);
    expectBitwiseEqualAcrossThreads(
        [&] { return col2im(cols, x.shape(), g); });
}

TEST(Determinism, HqtBitwiseIdentical)
{
    Rng rng(26);
    Tensor x({6000});
    x.fillGaussian(rng, 0.0f, 0.05f);
    for (int i = 0; i < 24; ++i)
        x[i * 250] = static_cast<float>(rng.gaussian(0.0, 1.5));
    const auto cfg = quant::E2bqmConfig::clippingLadder(8);
    expectBitwiseEqualAcrossThreads(
        [&] { return quant::fakeQuantizeHqt(x, 512, cfg); });
    expectBitwiseEqualAcrossThreads(
        [&] { return quant::fakeQuantizeE2bqm(x, cfg); });
}

TEST(Determinism, QuantizedMatmulBitwiseIdentical)
{
    Rng rng(27);
    Tensor a({24, 96}), b({96, 18});
    a.fillGaussian(rng, 0.0f, 0.5f);
    b.fillGaussian(rng, 0.0f, 0.5f);
    arch::QuantizedGemmOptions opt;
    expectBitwiseEqualAcrossThreads(
        [&] { return arch::quantizedMatmul(a, b, opt); });
}

} // namespace
} // namespace cq
