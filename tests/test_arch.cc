/**
 * @file
 * Tests of the architecture models: PE-array bit-serial datapath,
 * SQU timing, QBC requantization, NDP engine functional equivalence,
 * ISA helpers, and end-to-end executor smoke tests.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "arch/config.h"
#include "arch/isa.h"
#include "arch/ndp_engine.h"
#include "arch/pe_array.h"
#include "arch/qbc.h"
#include "arch/squ.h"
#include "common/rng.h"
#include "nn/optimizer.h"

namespace cq::arch {
namespace {

// ---------------------------------------------------------------- PE array

TEST(PeArray, BitSerialMultiplyMatchesExact)
{
    Rng rng(1);
    for (int trial = 0; trial < 2000; ++trial) {
        const int bits_a = 4 << (trial % 3);      // 4, 8, 16
        const int bits_b = 4 << ((trial / 3) % 3);
        const std::int32_t max_a = (1 << (bits_a - 1)) - 1;
        const std::int32_t max_b = (1 << (bits_b - 1)) - 1;
        const std::int32_t a = static_cast<std::int32_t>(
            rng.below(2 * max_a + 1)) - max_a;
        const std::int32_t b = static_cast<std::int32_t>(
            rng.below(2 * max_b + 1)) - max_b;
        EXPECT_EQ(PeArray::bitSerialMultiply(a, bits_a, b, bits_b),
                  static_cast<std::int64_t>(a) * b)
            << a << " * " << b << " @ " << bits_a << "x" << bits_b;
    }
}

TEST(PeArray, BitSerialHandles12Bit)
{
    EXPECT_EQ(PeArray::bitSerialMultiply(2047, 12, -2047, 12),
              -2047ll * 2047);
}

TEST(PeArray, DotProductMatchesReference)
{
    Rng rng(2);
    std::vector<std::int32_t> a(64), b(64);
    std::int64_t expect = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
        b[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
        expect += static_cast<std::int64_t>(a[i]) * b[i];
    }
    EXPECT_EQ(PeArray::dotProduct(a, 8, b, 8), expect);
}

TEST(PeArray, DequantizeAppliesBothScales)
{
    EXPECT_FLOAT_EQ(PeArray::dequantize(1000, 0.5, 0.25), 125.0f);
}

TEST(PeArray, MmCyclesInt8FullTile)
{
    CambriconQConfig cfg; // 64x64 4-bit
    PeArray pe(cfg);
    // One full 64x64 tile at INT8: m=1, passes=4 -> 4 cycles + fill.
    EXPECT_EQ(pe.mmCycles(1, 64, 64, 8, 8), 4u + cfg.peFill);
}

TEST(PeArray, MmCyclesScalesWithM)
{
    CambriconQConfig cfg;
    PeArray pe(cfg);
    const Tick t1 = pe.mmCycles(100, 64, 64, 8, 8);
    const Tick t2 = pe.mmCycles(200, 64, 64, 8, 8);
    EXPECT_EQ(t2 - cfg.peFill, 2 * (t1 - cfg.peFill));
}

TEST(PeArray, Int4IsFourTimesFasterThanInt8)
{
    CambriconQConfig cfg;
    PeArray pe(cfg);
    const Tick t8 = pe.mmCycles(512, 512, 512, 8, 8) - cfg.peFill;
    const Tick t4 = pe.mmCycles(512, 512, 512, 4, 4) - cfg.peFill;
    EXPECT_EQ(t8, 4 * t4);
}

TEST(PeArray, PeakMacsPerCycle)
{
    CambriconQConfig cfg;
    // 64*64/4 = 1024 INT8 MACs/cycle -> ~2 Tops @ 1 GHz.
    EXPECT_DOUBLE_EQ(cfg.peakMacsPerCycleInt8(), 1024.0);
}

TEST(PeArray, UtilizationHighForLargeSquare)
{
    CambriconQConfig cfg;
    PeArray pe(cfg);
    EXPECT_GT(pe.utilization(4096, 512, 512, 8, 8), 0.9);
}

TEST(PeArray, SystolicSlowerDueFillDrain)
{
    CambriconQConfig tree;
    CambriconQConfig sys = tree;
    sys.systolicDataflow = true;
    sys.peRows = 32;
    sys.peCols = 32;
    sys.peBits = 8;
    PeArray a(tree), b(sys);
    // Same INT8 peak (1024 macs/cycle vs 1024); systolic pays the
    // fill/drain per tile, so small-m GEMMs are slower there.
    EXPECT_GT(b.mmCycles(8, 512, 512, 8, 8),
              a.mmCycles(8, 512, 512, 8, 8));
}

TEST(PeArray, MeshSplitsWork)
{
    CambriconQConfig cfg = CambriconQConfig::throughputV(); // 8x8 mesh
    PeArray pe(cfg);
    CambriconQConfig base;
    PeArray single(base);
    const Tick t_mesh = pe.mmCycles(4096, 4096, 512, 8, 8);
    const Tick t_one = single.mmCycles(4096, 4096, 512, 8, 8);
    EXPECT_LT(64 * t_mesh, 2 * t_one); // ~64x faster, allow slack
}

// ---------------------------------------------------------------- SQU

TEST(Squ, OneWayKeepsUpWithDram)
{
    CambriconQConfig cfg;
    Squ squ(cfg);
    // Statistic rate 32 B/cycle > DRAM's ~17 B/cycle, so one-way
    // streaming cannot be the bottleneck.
    EXPECT_GE(squ.bytesPerCycle(1), cfg.dram.peakBytesPerTick());
}

TEST(Squ, FourWayHalvesThroughput)
{
    CambriconQConfig cfg;
    Squ squ(cfg);
    EXPECT_DOUBLE_EQ(squ.bytesPerCycle(4),
                     cfg.squQuantBytesPerCycle / 4.0);
}

TEST(Squ, StreamLatencyMonotonicInBytes)
{
    CambriconQConfig cfg;
    Squ squ(cfg);
    EXPECT_LT(squ.streamCycles(4096, 1), squ.streamCycles(65536, 1));
}

TEST(Squ, StreamLatencyMonotonicInWays)
{
    CambriconQConfig cfg;
    Squ squ(cfg);
    EXPECT_LE(squ.streamCycles(65536, 1), squ.streamCycles(65536, 4));
}

TEST(Squ, ZeroBytesZeroCycles)
{
    CambriconQConfig cfg;
    Squ squ(cfg);
    EXPECT_EQ(squ.streamCycles(0, 1), 0u);
}

// ---------------------------------------------------------------- QBC

TEST(Qbc, WholeLineWriteKeepsTag)
{
    Qbc qbc(1024, 32);
    quant::IntFormat fmt{8, 0.5};
    std::vector<std::int16_t> levels(32, 3);
    qbc.writeLine(0, levels, fmt);
    EXPECT_EQ(qbc.readLine(0).tag, fmt);
    EXPECT_DOUBLE_EQ(qbc.readValue(0, 5), 1.5);
    EXPECT_EQ(qbc.requantCount(), 0u);
}

TEST(Qbc, SameTagWordWriteNoRequant)
{
    Qbc qbc(1024, 32);
    quant::IntFormat fmt{8, 0.5};
    qbc.writeLine(0, std::vector<std::int16_t>(32, 4), fmt);
    qbc.writeWord(0, 3, 10, fmt);
    EXPECT_EQ(qbc.requantCount(), 0u);
    EXPECT_DOUBLE_EQ(qbc.readValue(0, 3), 5.0);
}

TEST(Qbc, MixedTagWriteTriggersRequantToMaxTag)
{
    Qbc qbc(1024, 32);
    quant::IntFormat fine{8, 0.25};
    quant::IntFormat wide{8, 1.0};
    qbc.writeLine(0, std::vector<std::int16_t>(32, 8), fine); // 2.0 each
    // Incoming word quantized with the wide scale.
    qbc.writeWord(0, 0, 50, wide); // value 50.0
    EXPECT_EQ(qbc.requantCount(), 1u);
    // The whole line now shares the wide (max) tag.
    EXPECT_EQ(qbc.readLine(0).tag.scale, 1.0);
    // Resident values were requantized and preserved.
    EXPECT_DOUBLE_EQ(qbc.readValue(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(qbc.readValue(0, 0), 50.0);
}

TEST(Qbc, RequantPreservesValuesWithinNewResolution)
{
    Qbc qbc(1024, 32);
    quant::IntFormat fine{8, 0.01};
    quant::IntFormat wide{8, 0.04};
    std::vector<std::int16_t> levels(32);
    for (int i = 0; i < 32; ++i)
        levels[i] = static_cast<std::int16_t>(i * 4 - 64);
    qbc.writeLine(0, levels, fine);
    qbc.writeWord(0, 31, 100, wide);
    // Every resident value must be within half a wide LSB.
    for (int i = 0; i < 31; ++i) {
        const double orig = (i * 4 - 64) * 0.01;
        EXPECT_NEAR(qbc.readValue(0, i), orig, 0.02 + 1e-9);
    }
}

TEST(Qbc, CapacitySetsLineCount)
{
    Qbc qbc(256 * 1024, 32);
    EXPECT_EQ(qbc.numLines(), 8192u);
}

// ---------------------------------------------------------------- NDP

TEST(NdpEngine, MatchesSoftwareOptimizerSgd)
{
    nn::OptimizerConfig cfg;
    cfg.kind = nn::OptimizerKind::SGD;
    cfg.lr = 0.1;
    NdpEngine ndp;
    ndp.configure(nn::NdpoConstants::fromConfig(cfg));

    std::vector<float> w{1.0f, -2.0f}, m(2, 0.0f), v(2, 0.0f);
    ndp.weightGradientStore(w, m, v, {0.5f, -0.5f});
    EXPECT_FLOAT_EQ(w[0], 1.0f - 0.1f * 0.5f);
    EXPECT_FLOAT_EQ(w[1], -2.0f + 0.1f * 0.5f);
}

TEST(NdpEngine, MatchesSoftwareOptimizerAllKinds)
{
    Rng rng(77);
    for (auto kind :
         {nn::OptimizerKind::SGD, nn::OptimizerKind::AdaGrad,
          nn::OptimizerKind::RMSProp, nn::OptimizerKind::Adam}) {
        nn::OptimizerConfig ocfg;
        ocfg.kind = kind;
        ocfg.lr = 0.01;

        // Software reference path.
        nn::Param p("w", {64});
        p.value.fillGaussian(rng, 0.0f, 1.0f);
        std::vector<float> w(p.value.vec());
        std::vector<float> m(64, 0.0f), v(64, 0.0f);

        nn::Optimizer opt(ocfg);
        opt.attach({&p});

        NdpEngine ndp;
        for (int step = 1; step <= 5; ++step) {
            Rng grad_rng(100 + step);
            for (std::size_t i = 0; i < 64; ++i)
                p.grad[i] =
                    static_cast<float>(grad_rng.gaussian(0.0, 0.1));
            opt.step();
            // The NDP engine is reconfigured per step (exact Adam
            // bias correction arrives via CROSET).
            ndp.configure(nn::NdpoConstants::forStep(
                ocfg, static_cast<std::size_t>(step)));
            std::vector<float> g(p.grad.vec());
            ndp.weightGradientStore(w, m, v, g);
        }
        for (std::size_t i = 0; i < 64; ++i) {
            EXPECT_FLOAT_EQ(w[i], p.value[i])
                << "kind=" << nn::optimizerKindName(kind) << " i=" << i;
        }
    }
}

TEST(NdpEngine, CountsElements)
{
    NdpEngine ndp;
    ndp.configure(nn::NdpoConstants::fromConfig({}));
    std::vector<float> w(10, 0.0f), m(10, 0.0f), v(10, 0.0f),
        g(10, 1.0f);
    ndp.weightGradientStore(w, m, v, g);
    ndp.weightGradientStore(w, m, v, g);
    EXPECT_EQ(ndp.elementsProcessed(), 20u);
}

// ---------------------------------------------------------------- ISA

TEST(Isa, OpcodeNamesUnique)
{
    EXPECT_STREQ(opcodeName(Opcode::WGSTORE), "WGSTORE");
    EXPECT_STREQ(opcodeName(Opcode::QMOVE), "QMOVE");
    EXPECT_STREQ(opcodeName(Opcode::CROSET), "CROSET");
}

TEST(Isa, InstrToStringMentionsFields)
{
    Instr ins;
    ins.op = Opcode::MM;
    ins.phase = Phase::WG;
    ins.m = 3;
    ins.n = 5;
    ins.k = 7;
    const std::string s = ins.toString();
    EXPECT_NE(s.find("MM"), std::string::npos);
    EXPECT_NE(s.find("WG"), std::string::npos);
    EXPECT_NE(s.find("m=3"), std::string::npos);
}

TEST(Isa, ValidateRejectsForwardDeps)
{
    Program prog(2);
    prog[0].deps = {1};
    std::string err;
    EXPECT_FALSE(validateProgram(prog, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Isa, ValidateAcceptsBackwardDeps)
{
    Program prog(3);
    prog[2].deps = {0, 1};
    EXPECT_TRUE(validateProgram(prog));
}

// ---------------------------------------------------------------- Executor

Instr
load(Addr addr, Bytes bytes)
{
    Instr i;
    i.op = Opcode::VLOAD;
    i.addr = addr;
    i.bytes = bytes;
    i.buf = BufId::NBin;
    return i;
}

TEST(Accelerator, EmptyProgramZeroTime)
{
    Accelerator acc(CambriconQConfig::edge());
    const PerfReport r = acc.run({});
    EXPECT_EQ(r.totalTicks, 0u);
}

TEST(Accelerator, SingleLoadTakesBandwidthTime)
{
    Accelerator acc(CambriconQConfig::edge());
    Program prog{load(0, 1 << 20)};
    const PerfReport r = acc.run(prog);
    // 1 MiB at 17.06 GB/s is ~61 us; allow generous bounds.
    EXPECT_GT(r.totalTicks, 55000u);
    EXPECT_LT(r.totalTicks, 80000u);
}

TEST(Accelerator, DependentComputeSerializes)
{
    Accelerator acc(CambriconQConfig::edge());
    Program prog;
    prog.push_back(load(0, 4096));
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 64;
    mm.n = 64;
    mm.k = 64;
    mm.deps = {0};
    prog.push_back(mm);
    const PerfReport r = acc.run(prog);
    // The MM can only start after the load.
    PeArray pe(acc.config());
    EXPECT_GE(r.totalTicks, pe.mmCycles(64, 64, 64, 8, 8));
}

TEST(Accelerator, IndependentUnitsOverlap)
{
    Accelerator acc(CambriconQConfig::edge());
    // A load and an equally-long second load on the same unit
    // serialize; a compute overlaps with a load.
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 4096;
    mm.n = 64;
    mm.k = 64;

    Program serial{load(0, 1 << 20), load(1 << 20, 1 << 20)};
    Program overlap{load(0, 1 << 20), mm};

    const Tick t_serial = Accelerator(acc.config()).run(serial).totalTicks;
    const Tick t_overlap =
        Accelerator(acc.config()).run(overlap).totalTicks;
    EXPECT_LT(t_overlap, t_serial);
}

TEST(Accelerator, WgstoreUsesNdpUnit)
{
    Accelerator acc(CambriconQConfig::edge());
    Instr wgs;
    wgs.op = Opcode::WGSTORE;
    wgs.elems = 100000;
    wgs.bytes = 400000;
    Program prog{wgs};
    const PerfReport r = acc.run(prog);
    EXPECT_GT(r.unitBusy[static_cast<std::size_t>(Unit::Ndp)], 0.0);
    EXPECT_EQ(r.activity.get("ndpo.elements"), 100000.0);
}

TEST(Accelerator, PhaseAttributionRecorded)
{
    Accelerator acc(CambriconQConfig::edge());
    Instr l = load(0, 65536);
    l.phase = Phase::NG;
    Program prog{l};
    const PerfReport r = acc.run(prog);
    EXPECT_GT(r.phaseBusy[static_cast<std::size_t>(Phase::NG)], 0.0);
    EXPECT_EQ(r.phaseBusy[static_cast<std::size_t>(Phase::FW)], 0.0);
}

TEST(Accelerator, EnergyBreakdownPopulated)
{
    Accelerator acc(CambriconQConfig::edge());
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 512;
    mm.n = 512;
    mm.k = 512;
    Program prog{load(0, 1 << 18), mm};
    const PerfReport r = acc.run(prog);
    EXPECT_GT(r.energy.accPj, 0.0);
    EXPECT_GT(r.energy.ddrDynamicPj, 0.0);
    EXPECT_GT(r.energy.ddrStandbyPj, 0.0);
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 128;
    mm.n = 128;
    mm.k = 128;
    mm.deps = {0};
    Program prog{load(0, 1 << 16), mm};
    const Tick t1 =
        Accelerator(CambriconQConfig::edge()).run(prog).totalTicks;
    const Tick t2 =
        Accelerator(CambriconQConfig::edge()).run(prog).totalTicks;
    EXPECT_EQ(t1, t2);
}


TEST(Accelerator, StridedLoadSlowerThanContiguous)
{
    // Same bytes, but stripes jump across DRAM rows: the command-level
    // model must charge the row misses.
    Instr contiguous = load(0, 256 * 1024);

    Instr strided;
    strided.op = Opcode::SLOAD;
    strided.bytes = 256 * 1024;
    strided.elems = 128;              // stripes
    strided.bytes2 = 8 * 2048;        // one stride = a full bank row set
    strided.buf = BufId::SB;

    const Tick t_c =
        Accelerator(CambriconQConfig::edge()).run({contiguous}).totalTicks;
    const Tick t_s =
        Accelerator(CambriconQConfig::edge()).run({strided}).totalTicks;
    EXPECT_GT(t_s, t_c);
}

TEST(Accelerator, TraceCoversEveryInstruction)
{
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 128;
    mm.n = 128;
    mm.k = 128;
    mm.deps = {0};
    Program prog{load(0, 1 << 16), mm};
    const PerfReport r =
        Accelerator(CambriconQConfig::edge()).run(prog, true);
    ASSERT_EQ(r.trace.size(), prog.size());
    for (const auto &e : r.trace) {
        EXPECT_LE(e.start, e.end);
        EXPECT_LE(e.end, r.totalTicks);
    }
}

TEST(Accelerator, TraceUnitsNeverOverlap)
{
    // Property: on any single unit, busy intervals are disjoint --
    // the executor must serialize each unit's instructions.
    const auto ir = [] {
        // Use a real compiled program for coverage.
        return CambriconQConfig::edge();
    }();
    (void)ir;
    Program prog;
    // Alternate loads/stores/computes with dependencies.
    for (int i = 0; i < 20; ++i) {
        Instr l = load(static_cast<Addr>(i) * 4096, 4096);
        prog.push_back(l);
        Instr mm;
        mm.op = Opcode::MM;
        mm.m = 64;
        mm.n = 64;
        mm.k = 64;
        mm.deps = {static_cast<std::uint32_t>(prog.size() - 1)};
        prog.push_back(mm);
        Instr st;
        st.op = Opcode::QSTORE;
        st.addr = 0x100000 + static_cast<Addr>(i) * 4096;
        st.bytes = 4096;
        st.elems = 4096;
        st.deps = {static_cast<std::uint32_t>(prog.size() - 1)};
        prog.push_back(st);
    }
    const PerfReport r =
        Accelerator(CambriconQConfig::edge()).run(prog, true);
    ASSERT_EQ(r.trace.size(), prog.size());

    std::array<std::vector<std::pair<Tick, Tick>>, kNumUnits> spans;
    for (const auto &e : r.trace)
        spans[static_cast<std::size_t>(e.unit)].push_back(
            {e.start, e.end});
    for (auto &v : spans) {
        std::sort(v.begin(), v.end());
        for (std::size_t i = 1; i < v.size(); ++i)
            EXPECT_LE(v[i - 1].second, v[i].first);
    }
}

TEST(Accelerator, TraceDependenciesRespected)
{
    Instr l = load(0, 1 << 16);
    Instr mm;
    mm.op = Opcode::MM;
    mm.m = 32;
    mm.n = 32;
    mm.k = 32;
    mm.deps = {0};
    Program prog{l, mm};
    const PerfReport r =
        Accelerator(CambriconQConfig::edge()).run(prog, true);
    Tick load_end = 0, mm_start = 0;
    for (const auto &e : r.trace) {
        if (e.instr == 0)
            load_end = e.end;
        if (e.instr == 1)
            mm_start = e.start;
    }
    EXPECT_GE(mm_start, load_end);
}

TEST(Accelerator, QbcRequantsCountedOnWgGemms)
{
    Instr mm;
    mm.op = Opcode::MM;
    mm.phase = Phase::WG;
    mm.m = 64;
    mm.n = 64;
    mm.k = 64;
    const PerfReport r =
        Accelerator(CambriconQConfig::edge()).run({mm});
    EXPECT_GT(r.activity.get("qbc.requants"), 0.0);

    Instr fw = mm;
    fw.phase = Phase::FW;
    const PerfReport r2 =
        Accelerator(CambriconQConfig::edge()).run({fw});
    EXPECT_EQ(r2.activity.get("qbc.requants"), 0.0);
}

} // namespace
} // namespace cq::arch
