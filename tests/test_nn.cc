/**
 * @file
 * Tests for the DNN training framework: numerical gradient checks for
 * every layer, loss functions, optimizers (including NDPO-constant
 * equivalence), network composition, datasets and the quantized
 * trainer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/quant_trainer.h"
#include "nn/softmax.h"
#include "tensor/tensor_ops.h"

namespace cq::nn {
namespace {

/**
 * Numerical gradient check. Loss L = sum(weights .* layer(x)); the
 * analytic input/parameter gradients from backward() are compared to
 * central finite differences. Conv/pool layers are checked at every
 * input element; parameter checks sample a subset for speed.
 */
class GradCheck
{
  public:
    GradCheck(Layer &layer, const Tensor &input, std::uint64_t seed = 9)
        : layer_(layer), input_(input)
    {
        Rng rng(seed);
        const Tensor out = layer_.forward(input_);
        lossWeights_ = Tensor(out.shape());
        lossWeights_.fillGaussian(rng, 0.0f, 1.0f);
    }

    double
    loss(const Tensor &input)
    {
        const Tensor out = layer_.forward(input);
        double l = 0.0;
        for (std::size_t i = 0; i < out.numel(); ++i)
            l += static_cast<double>(out[i]) * lossWeights_[i];
        return l;
    }

    /** Analytic gradients: returns grad wrt input; fills param grads. */
    Tensor
    analytic()
    {
        layer_.zeroGrads();
        layer_.forward(input_);
        return layer_.backward(lossWeights_);
    }

    /** Max relative error of input gradient vs finite differences. */
    double
    checkInput(double eps = 1e-3)
    {
        const Tensor analytic_grad = analytic();
        double worst = 0.0;
        for (std::size_t i = 0; i < input_.numel(); ++i) {
            Tensor xp = input_, xm = input_;
            xp[i] += static_cast<float>(eps);
            xm[i] -= static_cast<float>(eps);
            const double num = (loss(xp) - loss(xm)) / (2.0 * eps);
            worst = std::max(
                worst, relErr(num, analytic_grad[i]));
        }
        return worst;
    }

    /** Max relative error of parameter gradients (sampled). */
    double
    checkParams(double eps = 1e-3, std::size_t max_per_param = 24)
    {
        analytic();
        // Snapshot analytic gradients (finite-difference evaluation
        // below re-runs forward, but does not touch grads).
        std::vector<Tensor> grads;
        for (Param *p : layer_.params())
            grads.push_back(p->grad);

        double worst = 0.0;
        Rng rng(1234);
        const auto params = layer_.params();
        for (std::size_t pi = 0; pi < params.size(); ++pi) {
            Param *p = params[pi];
            const std::size_t n = p->value.numel();
            for (std::size_t s = 0;
                 s < std::min(max_per_param, n); ++s) {
                const std::size_t i = rng.below(n);
                const float saved = p->value[i];
                p->value[i] = saved + static_cast<float>(eps);
                const double lp = loss(input_);
                p->value[i] = saved - static_cast<float>(eps);
                const double lm = loss(input_);
                p->value[i] = saved;
                const double num = (lp - lm) / (2.0 * eps);
                worst = std::max(worst, relErr(num, grads[pi][i]));
            }
        }
        return worst;
    }

  private:
    static double
    relErr(double a, double b)
    {
        const double scale =
            std::max({std::fabs(a), std::fabs(b), 1e-2});
        return std::fabs(a - b) / scale;
    }

    Layer &layer_;
    Tensor input_;
    Tensor lossWeights_;
};

Tensor
randomTensor(const Shape &shape, std::uint64_t seed, float sigma = 1.0f)
{
    Rng rng(seed);
    Tensor t(shape);
    t.fillGaussian(rng, 0.0f, sigma);
    return t;
}

// ------------------------------------------------------ gradient checks

TEST(GradCheckTest, Linear)
{
    Rng rng(1);
    Linear layer("fc", 5, 7, rng);
    GradCheck check(layer, randomTensor({4, 5}, 2));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, Conv2d)
{
    Rng rng(3);
    Conv2d layer("conv", Conv2dGeometry{2, 3, 3, 3, 1, 1}, rng);
    GradCheck check(layer, randomTensor({2, 2, 5, 5}, 4));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, Conv2dStrided)
{
    Rng rng(5);
    Conv2d layer("conv", Conv2dGeometry{3, 4, 3, 3, 2, 0}, rng);
    GradCheck check(layer, randomTensor({2, 3, 7, 7}, 6));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, MaxPool)
{
    MaxPool2d layer("pool", 2, 2);
    // Finite differences require every pooling window's max to be
    // separated from the runner-up by more than 2*eps, or the argmax
    // flips under perturbation; space the values out explicitly.
    Tensor x = randomTensor({2, 3, 6, 6}, 7);
    for (std::size_t i = 0; i < x.numel(); ++i)
        x[i] = std::round(x[i] * 5.0f) / 5.0f +
               static_cast<float>(i % 97) * 1e-3f;
    GradCheck check(layer, x);
    EXPECT_LT(check.checkInput(1e-4), 2e-2);
}

TEST(GradCheckTest, GlobalAvgPool)
{
    GlobalAvgPool layer("gap");
    GradCheck check(layer, randomTensor({2, 4, 3, 3}, 8));
    EXPECT_LT(check.checkInput(), 2e-2);
}

TEST(GradCheckTest, ActivationsAll)
{
    for (auto kind : {ActKind::ReLU, ActKind::Tanh, ActKind::Sigmoid,
                      ActKind::Gelu}) {
        Activation layer("act", kind);
        // Shift inputs away from ReLU's kink for finite differences.
        Tensor x = randomTensor({3, 9}, 9u + static_cast<int>(kind));
        for (std::size_t i = 0; i < x.numel(); ++i)
            if (std::fabs(x[i]) < 0.05f)
                x[i] += 0.1f;
        GradCheck check(layer, x);
        EXPECT_LT(check.checkInput(), 2e-2) << actKindName(kind);
    }
}

TEST(GradCheckTest, LayerNorm)
{
    LayerNorm layer("ln", 6);
    GradCheck check(layer, randomTensor({4, 6}, 10));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, Lstm)
{
    Rng rng(11);
    Lstm layer("lstm", 4, 5, rng);
    GradCheck check(layer, randomTensor({3, 2, 4}, 12, 0.5f));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, MultiHeadSelfAttention)
{
    Rng rng(13);
    MultiHeadSelfAttention layer("attn", 2, 3, 8, 2, rng);
    GradCheck check(layer, randomTensor({6, 8}, 14, 0.5f));
    // FP32 forward + 1e-3 differences: allow ~5% relative slack.
    EXPECT_LT(check.checkInput(), 5e-2);
    EXPECT_LT(check.checkParams(), 5e-2);
}

TEST(GradCheckTest, TransformerBlock)
{
    Rng rng(15);
    TransformerBlock layer("blk", 2, 3, 8, 2, 16, rng);
    GradCheck check(layer, randomTensor({6, 8}, 16, 0.5f));
    EXPECT_LT(check.checkInput(), 5e-2);
    // The deep ln/attention/ffn composition leaves ~1e-4 of FP32
    // round-off noise in the difference quotient; gradients of
    // magnitude ~4e-3 therefore carry ~10% apparent error even when
    // exact (verified by Richardson extrapolation), so the bound
    // here is loose.
    EXPECT_LT(check.checkParams(3e-3), 0.12);
}

TEST(GradCheckTest, PositionalEncoding)
{
    PositionalEncoding layer("pos", 4, 6);
    GradCheck check(layer, randomTensor({8, 6}, 17));
    EXPECT_LT(check.checkInput(), 1e-3); // identity gradient
}


TEST(GradCheckTest, BatchNormTraining)
{
    BatchNorm2d layer("bn", 3);
    GradCheck check(layer, randomTensor({2, 3, 4, 4}, 50));
    EXPECT_LT(check.checkInput(), 3e-2);
    EXPECT_LT(check.checkParams(), 3e-2);
}

TEST(BatchNorm, NormalizesPerChannelInTraining)
{
    BatchNorm2d layer("bn", 2);
    Tensor x = randomTensor({4, 2, 5, 5}, 51);
    // Shift channel 1 strongly; normalized output must be ~N(0,1).
    for (std::size_t i = 0; i < x.numel(); ++i)
        if ((i / 25) % 2 == 1)
            x[i] += 10.0f;
    const Tensor out = layer.forward(x);
    for (std::size_t c = 0; c < 2; ++c) {
        double sum = 0.0, sum2 = 0.0;
        std::size_t cnt = 0;
        for (std::size_t n = 0; n < 4; ++n)
            for (std::size_t yx = 0; yx < 25; ++yx) {
                const float v =
                    out.at4(n, c, yx / 5, yx % 5);
                sum += v;
                sum2 += v * v;
                ++cnt;
            }
        EXPECT_NEAR(sum / cnt, 0.0, 1e-3);
        EXPECT_NEAR(sum2 / cnt, 1.0, 1e-2);
    }
}

TEST(BatchNorm, RunningStatsConvergeToDataStats)
{
    BatchNorm2d layer("bn", 1, 0.3f);
    Rng rng(52);
    for (int i = 0; i < 50; ++i) {
        Tensor x({8, 1, 4, 4});
        x.fillGaussian(rng, 2.0f, 0.5f);
        layer.forward(x);
    }
    EXPECT_NEAR(layer.runningMean()[0], 2.0f, 0.1f);
    EXPECT_NEAR(layer.runningVar()[0], 0.25f, 0.05f);
}

TEST(BatchNorm, EvalModeUsesRunningStats)
{
    BatchNorm2d layer("bn", 1);
    Rng rng(53);
    for (int i = 0; i < 30; ++i) {
        Tensor x({8, 1, 4, 4});
        x.fillGaussian(rng, 1.0f, 1.0f);
        layer.forward(x);
    }
    layer.setTraining(false);
    // A constant input in eval mode maps deterministically through
    // the running stats (no division by a zero batch variance).
    Tensor c({2, 1, 2, 2}, 1.0f);
    const Tensor out = layer.forward(c);
    for (std::size_t i = 0; i < out.numel(); ++i)
        EXPECT_NEAR(out[i], out[0], 1e-6);
}


TEST(GradCheckTest, ResidualIdentitySkip)
{
    Rng rng(55);
    std::vector<LayerPtr> main_path;
    main_path.push_back(std::make_unique<Conv2d>(
        "c", Conv2dGeometry{3, 3, 3, 3, 1, 1}, rng));
    Residual layer("res", std::move(main_path));
    GradCheck check(layer, randomTensor({2, 3, 4, 4}, 56));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(GradCheckTest, ResidualProjectionSkip)
{
    Rng rng(57);
    std::vector<LayerPtr> main_path;
    main_path.push_back(std::make_unique<Conv2d>(
        "c", Conv2dGeometry{2, 4, 3, 3, 2, 1}, rng));
    auto skip = std::make_unique<Conv2d>(
        "down", Conv2dGeometry{2, 4, 1, 1, 2, 0}, rng);
    Residual layer("res", std::move(main_path), std::move(skip));
    GradCheck check(layer, randomTensor({2, 2, 6, 6}, 58));
    EXPECT_LT(check.checkInput(), 2e-2);
    EXPECT_LT(check.checkParams(), 2e-2);
}

TEST(Residual, IdentityPlusZeroMainIsDouble)
{
    // A main path that is the identity activation doubles the input.
    std::vector<LayerPtr> main_path;
    main_path.push_back(
        std::make_unique<Activation>("id", ActKind::ReLU));
    Residual layer("res", std::move(main_path));
    Tensor x({2, 3}, 1.0f);
    const Tensor y = layer.forward(x);
    for (std::size_t i = 0; i < y.numel(); ++i)
        EXPECT_FLOAT_EQ(y[i], 2.0f);
}

TEST(Residual, TrainsMiniResNetOnSpiral)
{
    SpiralDataset data(2, 0.1, 60);
    Rng rng(61);
    Network net;
    net.add(std::make_unique<Linear>("in", 2, 16, rng));
    std::vector<LayerPtr> block;
    block.push_back(std::make_unique<Linear>("b1", 16, 16, rng));
    block.push_back(std::make_unique<Activation>("t", ActKind::Tanh));
    block.push_back(std::make_unique<Linear>("b2", 16, 16, rng));
    net.add(std::make_unique<Residual>("res", std::move(block)));
    net.add(std::make_unique<Activation>("t2", ActKind::Tanh));
    net.add(std::make_unique<Linear>("out", 16, 2, rng));

    QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    QuantTrainer trainer(net, cfg);
    for (int i = 0; i < 200; ++i) {
        const auto b = data.sample(64);
        trainer.stepClassification(b.inputs, b.labels);
    }
    const auto eval = data.evalSet(256);
    EXPECT_GT(trainer.evalAccuracy(eval.inputs, eval.labels), 0.88);
}

// ------------------------------------------------------------- shapes

TEST(Layers, LinearShape)
{
    Rng rng(20);
    Linear layer("fc", 3, 8, rng);
    EXPECT_EQ(layer.forward(randomTensor({5, 3}, 21)).shape(),
              (Shape{5, 8}));
}

TEST(Layers, ConvShapePadStride)
{
    Rng rng(22);
    Conv2d layer("conv", Conv2dGeometry{3, 16, 5, 5, 2, 2}, rng);
    EXPECT_EQ(layer.forward(randomTensor({2, 3, 32, 32}, 23)).shape(),
              (Shape{2, 16, 16, 16}));
}

TEST(Layers, LstmShape)
{
    Rng rng(24);
    Lstm layer("lstm", 6, 10, rng);
    EXPECT_EQ(layer.forward(randomTensor({7, 3, 6}, 25)).shape(),
              (Shape{7, 3, 10}));
}

TEST(Layers, MergeLeading)
{
    MergeLeading layer("m");
    const Tensor out = layer.forward(randomTensor({3, 4, 5}, 26));
    EXPECT_EQ(out.shape(), (Shape{12, 5}));
    EXPECT_EQ(layer.backward(out).shape(), (Shape{3, 4, 5}));
}

TEST(Layers, FlattenRoundTrip)
{
    Flatten layer("f");
    const Tensor out = layer.forward(randomTensor({3, 2, 4, 4}, 27));
    EXPECT_EQ(out.shape(), (Shape{3, 32}));
    EXPECT_EQ(layer.backward(out).shape(), (Shape{3, 2, 4, 4}));
}

// ------------------------------------------------------------- losses

TEST(Loss, SoftmaxRowsSumToOne)
{
    const Tensor probs = softmax(randomTensor({6, 10}, 30));
    for (std::size_t r = 0; r < 6; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < 10; ++c)
            s += probs.at2(r, c);
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Loss, CrossEntropyPerfectPrediction)
{
    Tensor logits({2, 3});
    logits.at2(0, 1) = 50.0f;
    logits.at2(1, 2) = 50.0f;
    SoftmaxCrossEntropy head;
    EXPECT_NEAR(head.loss(logits, {1, 2}), 0.0, 1e-6);
}

TEST(Loss, CrossEntropyUniformIsLogC)
{
    Tensor logits({4, 8}); // all zeros -> uniform
    SoftmaxCrossEntropy head;
    EXPECT_NEAR(head.loss(logits, {0, 1, 2, 3}), std::log(8.0), 1e-6);
}

TEST(Loss, GradientMatchesFiniteDifference)
{
    Tensor logits = randomTensor({3, 5}, 31);
    const std::vector<int> labels{1, 4, 0};
    SoftmaxCrossEntropy head;
    head.loss(logits, labels);
    const Tensor grad = head.grad();

    const double eps = 1e-3;
    for (std::size_t i = 0; i < logits.numel(); ++i) {
        Tensor lp = logits, lm = logits;
        lp[i] += static_cast<float>(eps);
        lm[i] -= static_cast<float>(eps);
        SoftmaxCrossEntropy h2;
        const double num =
            (h2.loss(lp, labels) - h2.loss(lm, labels)) / (2 * eps);
        EXPECT_NEAR(num, grad[i], 1e-4);
    }
}

TEST(Loss, AccuracyCountsArgmax)
{
    Tensor logits({3, 2});
    logits.at2(0, 1) = 1.0f; // predicts 1
    logits.at2(1, 0) = 1.0f; // predicts 0
    logits.at2(2, 1) = 1.0f; // predicts 1
    EXPECT_NEAR(SoftmaxCrossEntropy::accuracy(logits, {1, 0, 0}),
                2.0 / 3.0, 1e-9);
}

TEST(Loss, MseAndGrad)
{
    Tensor pred({2}, std::vector<float>{1.0f, 3.0f});
    Tensor target({2}, std::vector<float>{0.0f, 1.0f});
    EXPECT_NEAR(mseLoss(pred, target), 0.5 * (1.0 + 4.0) / 2.0, 1e-6);
    const Tensor g = mseGrad(pred, target);
    EXPECT_NEAR(g[0], 0.5f, 1e-6);
    EXPECT_NEAR(g[1], 1.0f, 1e-6);
}

// ---------------------------------------------------------- optimizers

TEST(OptimizerTest, SgdMatchesHandComputation)
{
    Param p("w", {2});
    p.value[0] = 1.0f;
    p.value[1] = -1.0f;
    p.grad[0] = 0.5f;
    p.grad[1] = -0.25f;
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::SGD;
    cfg.lr = 0.1;
    Optimizer opt(cfg);
    opt.attach({&p});
    opt.step();
    EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
    EXPECT_FLOAT_EQ(p.value[1], -1.0f + 0.1f * 0.25f);
}

TEST(OptimizerTest, AdaGradAccumulatesSquares)
{
    Param p("w", {1});
    p.value[0] = 0.0f;
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::AdaGrad;
    cfg.lr = 1.0;
    cfg.eps = 0.0;
    Optimizer opt(cfg);
    opt.attach({&p});
    // Two steps with g = 3, then g = 4: v = 9 then 25.
    p.grad[0] = 3.0f;
    opt.step();
    EXPECT_NEAR(p.value[0], -3.0 / 3.0, 1e-5);
    p.grad[0] = 4.0f;
    opt.step();
    EXPECT_NEAR(p.value[0], -1.0 - 4.0 / 5.0, 1e-5);
}

TEST(OptimizerTest, RmsPropDecaysHistory)
{
    Param p("w", {1});
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::RMSProp;
    cfg.lr = 0.01;
    cfg.beta = 0.9;
    cfg.eps = 0.0;
    Optimizer opt(cfg);
    opt.attach({&p});
    p.grad[0] = 2.0f;
    opt.step();
    // v = 0.1 * 4 = 0.4; step = 0.01 * 2 / sqrt(0.4).
    EXPECT_NEAR(p.value[0], -0.01 * 2.0 / std::sqrt(0.4), 1e-6);
}

TEST(OptimizerTest, AdamBiasCorrectionExact)
{
    Param p("w", {1});
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::Adam;
    cfg.lr = 0.001;
    cfg.eps = 0.0;
    Optimizer opt(cfg);
    opt.attach({&p});
    p.grad[0] = 0.5f;
    opt.step();
    // After step 1 with exact bias correction, the update equals
    // -lr * g / |g| = -lr.
    EXPECT_NEAR(p.value[0], -0.001, 1e-6);
}

TEST(OptimizerTest, AdamFixedC5MatchesStepOne)
{
    // The paper's fixed-c5 Adam (fromConfig) equals exact Adam's
    // constants at step 1: sqrt(1-b2^1)/(1-b1^1).
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::Adam;
    const auto fixed = NdpoConstants::fromConfig(cfg);
    const auto exact = NdpoConstants::forStep(cfg, 1);
    EXPECT_NEAR(fixed.c5, exact.c5, 1e-12);
    // And at large t the exact correction converges to lr.
    EXPECT_NEAR(NdpoConstants::forStep(cfg, 100000).c5, cfg.lr, 1e-6);
}

TEST(OptimizerTest, ConvergesOnQuadratic)
{
    // Minimize (w - 3)^2 with each optimizer.
    const struct
    {
        OptimizerKind kind;
        double lr;
    } cases[] = {
        {OptimizerKind::SGD, 0.05},
        {OptimizerKind::AdaGrad, 0.5},
        {OptimizerKind::RMSProp, 0.02},
        {OptimizerKind::Adam, 0.05},
    };
    for (const auto &c : cases) {
        Param p("w", {1});
        OptimizerConfig cfg;
        cfg.kind = c.kind;
        cfg.lr = c.lr;
        Optimizer opt(cfg);
        opt.attach({&p});
        for (int i = 0; i < 800; ++i) {
            p.grad[0] = 2.0f * (p.value[0] - 3.0f);
            opt.step();
        }
        EXPECT_NEAR(p.value[0], 3.0f, 0.1)
            << optimizerKindName(c.kind);
    }
}

// ------------------------------------------------------------ datasets

TEST(Datasets, PatternImagesDeterministicEval)
{
    PatternImageDataset d(4, 1, 8, 8, 0.3, 99);
    const auto a = d.evalSet(16);
    const auto b = d.evalSet(16);
    EXPECT_TRUE(a.inputs == b.inputs);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Datasets, PatternImagesLabelRange)
{
    PatternImageDataset d(6, 2, 8, 8, 0.3, 7);
    const auto batch = d.sample(64);
    for (int l : batch.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 6);
    }
    EXPECT_EQ(batch.inputs.shape(), (Shape{64, 2, 8, 8}));
}

TEST(Datasets, SpiralSeparable)
{
    SpiralDataset d(2, 0.05, 3);
    const auto b = d.sample(200);
    // Points should be non-degenerate.
    EXPECT_GT(b.inputs.maxAbs(), 0.5f);
}

TEST(Datasets, MarkovTargetsMatchNextTokens)
{
    MarkovTextDataset d(8, 5);
    const auto batch = d.sample(6, 3);
    EXPECT_EQ(batch.inputs.shape(), (Shape{6, 3, 8}));
    EXPECT_EQ(batch.targets.size(), 18u);
    // One-hot rows.
    for (std::size_t t = 0; t < 6; ++t)
        for (std::size_t b = 0; b < 3; ++b) {
            float s = 0.0f;
            for (std::size_t v = 0; v < 8; ++v)
                s += batch.inputs[(t * 3 + b) * 8 + v];
            EXPECT_FLOAT_EQ(s, 1.0f);
        }
}

TEST(Datasets, MarkovIsLearnable)
{
    // A bigram table fit on samples should beat the uniform model.
    MarkovTextDataset d(8, 6);
    const auto batch = d.sample(64, 16);
    std::array<std::array<double, 8>, 8> counts{};
    for (std::size_t t = 0; t < 64; ++t)
        for (std::size_t b = 0; b < 16; ++b) {
            int cur = 0;
            for (std::size_t v = 0; v < 8; ++v)
                if (batch.inputs[(t * 16 + b) * 8 + v] > 0.5f)
                    cur = static_cast<int>(v);
            counts[cur][batch.targets[t * 16 + b]] += 1.0;
        }
    double nll = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < 64; ++t)
        for (std::size_t b = 0; b < 16; ++b) {
            int cur = 0;
            for (std::size_t v = 0; v < 8; ++v)
                if (batch.inputs[(t * 16 + b) * 8 + v] > 0.5f)
                    cur = static_cast<int>(v);
            double total = 1e-9;
            for (double c : counts[cur])
                total += c;
            nll -= std::log(
                (counts[cur][batch.targets[t * 16 + b]] + 1e-9) /
                total);
            ++n;
        }
    EXPECT_LT(nll / n, std::log(8.0) * 0.8);
}

TEST(Datasets, SequenceRuleShapes)
{
    SequenceRuleDataset d(4, 12, 10, 8);
    const auto b = d.sample(5);
    EXPECT_EQ(b.inputs.shape(), (Shape{50, 12}));
    EXPECT_EQ(b.labels.size(), 5u);
}

// -------------------------------------------------------- quant trainer

TEST(QuantTrainerTest, Fp32LearnsSpiral)
{
    SpiralDataset data(2, 0.1, 17);
    Rng rng(18);
    Network net;
    net.add(std::make_unique<Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<Activation>("t", ActKind::Tanh));
    net.add(std::make_unique<Linear>("fc2", 32, 2, rng));

    QuantTrainerConfig cfg;
    cfg.optimizer.kind = OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    QuantTrainer trainer(net, cfg);

    for (int i = 0; i < 200; ++i) {
        const auto b = data.sample(64);
        trainer.stepClassification(b.inputs, b.labels);
    }
    const auto eval = data.evalSet(256);
    EXPECT_GT(trainer.evalAccuracy(eval.inputs, eval.labels), 0.9);
}

TEST(QuantTrainerTest, QuantizedLearnsSpiralToo)
{
    SpiralDataset data(2, 0.1, 17);
    Rng rng(18);
    Network net;
    net.add(std::make_unique<Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<Activation>("t", ActKind::Tanh));
    net.add(std::make_unique<Linear>("fc2", 32, 2, rng));

    QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    QuantTrainer trainer(net, cfg);

    for (int i = 0; i < 200; ++i) {
        const auto b = data.sample(64);
        trainer.stepClassification(b.inputs, b.labels);
    }
    const auto eval = data.evalSet(256);
    EXPECT_GT(trainer.evalAccuracy(eval.inputs, eval.labels), 0.88);
}

TEST(QuantTrainerTest, MasterWeightsStayFullPrecision)
{
    // After a step, the network holds master (unquantized) weights --
    // quantized copies exist only during forward/backward.
    SpiralDataset data(2, 0.1, 19);
    Rng rng(20);
    Network net;
    net.add(std::make_unique<Linear>("fc1", 2, 16, rng));
    net.add(std::make_unique<Linear>("fc2", 16, 2, rng));

    QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhu2019();
    QuantTrainer trainer(net, cfg);
    const auto b = data.sample(8);
    trainer.stepClassification(b.inputs, b.labels);

    // Quantizing the current weights must change them (i.e. they are
    // not already a quantized lattice).
    Param *w = net.params()[0];
    const Tensor q = quant::applyPolicy(w->value, cfg.algorithm,
                                        quant::TensorRole::Weight);
    EXPECT_FALSE(q == w->value);
}

TEST(QuantTrainerTest, GradientRecordsCollected)
{
    SpiralDataset data(2, 0.1, 21);
    Rng rng(22);
    Network net;
    net.add(std::make_unique<Linear>("fc1", 2, 8, rng));
    net.add(std::make_unique<Linear>("fc2", 8, 2, rng));

    QuantTrainerConfig cfg;
    cfg.recordGradientStats = true;
    QuantTrainer trainer(net, cfg);
    const auto b = data.sample(8);
    trainer.stepClassification(b.inputs, b.labels);
    // One record per layer per step.
    EXPECT_EQ(trainer.gradientRecords().size(), 2u);
    EXPECT_EQ(trainer.gradientRecords()[0].step, 1u);
}

TEST(QuantTrainerTest, DeterministicGivenSeeds)
{
    const auto run = [] {
        SpiralDataset data(2, 0.1, 23);
        Rng rng(24);
        Network net;
        net.add(std::make_unique<Linear>("fc1", 2, 8, rng));
        net.add(std::make_unique<Linear>("fc2", 8, 2, rng));
        QuantTrainerConfig cfg;
        cfg.algorithm = quant::AlgorithmConfig::zhang2020();
        QuantTrainer trainer(net, cfg);
        double loss = 0.0;
        for (int i = 0; i < 5; ++i) {
            const auto b = data.sample(8);
            loss = trainer.stepClassification(b.inputs, b.labels);
        }
        return loss;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(QuantTrainerTest, LanguageModelPerplexityDrops)
{
    MarkovTextDataset data(8, 31);
    Rng rng(32);
    Network net;
    net.add(std::make_unique<Lstm>("lstm", 8, 16, rng));
    net.add(std::make_unique<MergeLeading>("m"));
    net.add(std::make_unique<Linear>("proj", 16, 8, rng));

    QuantTrainerConfig cfg;
    cfg.optimizer.kind = OptimizerKind::Adam;
    cfg.optimizer.lr = 1e-2;
    QuantTrainer trainer(net, cfg);

    const auto eval = data.evalSet(12, 16);
    const double before =
        trainer.evalPerplexity(eval.inputs, eval.targets, 8);
    for (int i = 0; i < 60; ++i) {
        const auto b = data.sample(12, 16);
        trainer.stepLanguageModel(b.inputs, b.targets, 8);
    }
    const double after =
        trainer.evalPerplexity(eval.inputs, eval.targets, 8);
    EXPECT_LT(after, before * 0.8);
    EXPECT_LT(after, 8.0); // below the uniform-model perplexity
}

// ------------------------------------------------------------- network

TEST(NetworkTest, ForwardHookSeesEveryLayer)
{
    Rng rng(40);
    Network net;
    net.add(std::make_unique<Linear>("a", 4, 4, rng));
    net.add(std::make_unique<Linear>("b", 4, 4, rng));
    net.add(std::make_unique<Linear>("c", 4, 2, rng));

    std::vector<std::size_t> seen;
    net.forward(randomTensor({2, 4}, 41),
                [&](const Tensor &x, std::size_t i) {
                    seen.push_back(i);
                    return x;
                });
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NetworkTest, BackwardHookReverseOrder)
{
    Rng rng(42);
    Network net;
    net.add(std::make_unique<Linear>("a", 4, 4, rng));
    net.add(std::make_unique<Linear>("b", 4, 2, rng));
    net.forward(randomTensor({2, 4}, 43));

    std::vector<std::size_t> seen;
    net.backward(randomTensor({2, 2}, 44),
                 [&](const Tensor &g, std::size_t i) {
                     seen.push_back(i);
                     return g;
                 });
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 0}));
}

TEST(NetworkTest, NumParamsCounts)
{
    Rng rng(45);
    Network net;
    net.add(std::make_unique<Linear>("a", 4, 8, rng)); // 32 + 8
    net.add(std::make_unique<Linear>("b", 8, 2, rng)); // 16 + 2
    EXPECT_EQ(net.numParams(), 58u);
}

} // namespace
} // namespace cq::nn
