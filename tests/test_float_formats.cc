/**
 * @file
 * Parameterized property tests over the minifloat formats (FP8 /
 * FP16 / FP24): round-trip identity on representables, half-ULP
 * relative error on normals, monotonicity, saturation, and the
 * loss-scaled quantization used by the Wang-2018 policy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "quant/qformat.h"
#include "tensor/tensor_ops.h"

namespace cq::quant {
namespace {

class FloatFormats : public ::testing::TestWithParam<FloatFormat>
{
};

TEST_P(FloatFormats, RepresentablesAreFixedPoints)
{
    const FloatFormat fmt = GetParam();
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.gaussian(0.0, 10.0);
        const double q = roundToFloatFormat(x, fmt);
        // Idempotence: quantizing a quantized value is the identity.
        EXPECT_DOUBLE_EQ(roundToFloatFormat(q, fmt), q);
    }
}

TEST_P(FloatFormats, HalfUlpRelativeBoundOnNormals)
{
    const FloatFormat fmt = GetParam();
    const double bound = std::pow(2.0, -(fmt.mantBits + 1)) + 1e-15;
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform(fmt.minNormal(),
                                     fmt.maxValue() * 0.99);
        const double q = roundToFloatFormat(x, fmt);
        EXPECT_LE(std::fabs(q - x) / x, bound) << x;
    }
}

TEST_P(FloatFormats, Monotone)
{
    const FloatFormat fmt = GetParam();
    Rng rng(3);
    double prev_x = -1e30, prev_q = -fmt.maxValue();
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i)
        xs.push_back(rng.gaussian(0.0, 100.0));
    std::sort(xs.begin(), xs.end());
    for (double x : xs) {
        const double q = roundToFloatFormat(x, fmt);
        EXPECT_GE(q, prev_q) << "at x=" << x << " prev=" << prev_x;
        prev_q = q;
        prev_x = x;
    }
}

TEST_P(FloatFormats, SaturationAndSymmetry)
{
    const FloatFormat fmt = GetParam();
    EXPECT_DOUBLE_EQ(roundToFloatFormat(1e300, fmt), fmt.maxValue());
    EXPECT_DOUBLE_EQ(roundToFloatFormat(-1e300, fmt),
                     -fmt.maxValue());
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.gaussian(0.0, 5.0);
        EXPECT_DOUBLE_EQ(roundToFloatFormat(-x, fmt),
                         -roundToFloatFormat(x, fmt));
    }
}

TEST_P(FloatFormats, NanPropagatesInfSaturates)
{
    const FloatFormat fmt = GetParam();
    // NaN must survive the rounding, not silently become ±maxValue
    // (regression: a NaN-poisoned tensor used to saturate and train
    // on garbage without any signal).
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isnan(roundToFloatFormat(qnan, fmt)));
    EXPECT_TRUE(std::isnan(roundToFloatFormat(-qnan, fmt)));
    // Infinities saturate: the modeled datapath has no inf encoding.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(roundToFloatFormat(inf, fmt), fmt.maxValue());
    EXPECT_DOUBLE_EQ(roundToFloatFormat(-inf, fmt), -fmt.maxValue());
}

TEST_P(FloatFormats, SubnormalsRoundOnFixedQuantum)
{
    const FloatFormat fmt = GetParam();
    // Below minNormal the quantum is fixed at 2^(emin - mantBits).
    const double quantum =
        std::ldexp(1.0, 1 - fmt.bias - fmt.mantBits);
    // The smallest subnormal is representable exactly...
    EXPECT_DOUBLE_EQ(roundToFloatFormat(quantum, fmt), quantum);
    EXPECT_DOUBLE_EQ(roundToFloatFormat(-quantum, fmt), -quantum);
    // ...anything at or below half of it flushes to zero...
    EXPECT_DOUBLE_EQ(roundToFloatFormat(quantum * 0.49, fmt), 0.0);
    // ...and mid-range subnormals land on the quantum grid.
    const double x = quantum * 2.75;
    const double q = roundToFloatFormat(x, fmt);
    EXPECT_DOUBLE_EQ(q, quantum * 3.0);
    EXPECT_LT(q, fmt.minNormal());
}

TEST_P(FloatFormats, LossScalingPreservesRelativeError)
{
    const FloatFormat fmt = GetParam();
    // Data far below the format's normal range survives when scaled.
    Rng rng(5);
    Tensor x({2048});
    x.fillGaussian(rng, 0.0f, 1e-9f);
    const Tensor q = fakeQuantizeFloatScaled(x, fmt, x.maxAbs());
    const double rel =
        rmse(x, q) /
        std::sqrt(static_cast<double>(x.sumSquares() / x.numel()));
    EXPECT_LT(rel, std::pow(2.0, -fmt.mantBits));
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FloatFormats,
    ::testing::Values(FloatFormat::fp8(), FloatFormat::fp16(),
                      FloatFormat::fp24()),
    [](const auto &info) {
        return "e" + std::to_string(info.param.expBits) + "m" +
               std::to_string(info.param.mantBits);
    });

} // namespace
} // namespace cq::quant
