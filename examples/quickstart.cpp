/**
 * @file
 * Quickstart: the Hardware-friendly Quantization Technique in five
 * minutes.
 *
 * Generates a long-tail-distributed tensor (the shape of real DNN
 * gradients), quantizes it three ways -- layer-wise dynamic
 * quantization, LDQ block slicing, and full HQT (LDQ + 4-way E2BQM)
 * -- and prints the reconstruction error of each, then shows the
 * PE-array bit-serial datapath reproducing an exact INT8 dot product.
 */

#include <cstdio>

#include "arch/pe_array.h"
#include "common/rng.h"
#include "quant/block_quant.h"
#include "quant/e2bqm.h"
#include "tensor/tensor_ops.h"

int
main()
{
    using namespace cq;

    // ---- 1. A gradient-like tensor: dense center, heavy tail ----
    Rng rng(2021);
    Tensor grads({16384});
    for (std::size_t i = 0; i < grads.numel(); ++i)
        grads[i] = static_cast<float>(rng.gaussian(0.0, 0.01));
    for (int i = 0; i < 64; ++i)
        grads[rng.below(grads.numel())] =
            static_cast<float>(rng.gaussian(0.0, 0.5));

    std::printf("HQT quickstart: quantizing %zu gradient values "
                "(max|x| = %.4f)\n\n",
                grads.numel(), grads.maxAbs());

    // ---- 2. Layer-wise DQ: one statistic for everything ----
    const Tensor via_dq = quant::dqQuantize(grads, 8).dequantize();
    std::printf("  layer-wise DQ (INT8):      rmse = %.3e\n",
                rmse(grads, via_dq));

    // ---- 3. LDQ: per-block statistics, one-pass streaming ----
    const Tensor via_ldq = quant::fakeQuantizeLdq(grads, 1024, 8);
    std::printf("  LDQ, 1024-elem blocks:     rmse = %.3e\n",
                rmse(grads, via_ldq));

    // ---- 4. Full HQT: LDQ + 4-way E2BQM ----
    // The shiftable ladder minimizes representation error...
    const Tensor via_shift = quant::fakeQuantizeHqt(
        grads, 1024, quant::E2bqmConfig::shiftableLadder(8));
    std::printf("  HQT (LDQ + shiftable):     rmse = %.3e\n",
                rmse(grads, via_shift));
    // ...while the clipping ladder (direction-sensitive gradient
    // clipping) deliberately clips the long tail to preserve the
    // gradient *direction* (cosine), accepting a worse RMSE.
    const Tensor via_clip = quant::fakeQuantizeHqt(
        grads, 1024, quant::E2bqmConfig::clippingLadder(
            8, quant::ErrorMetric::CosineDistance));
    std::printf("  HQT (LDQ + clipping):      rmse = %.3e, "
                "cosine = %.6f (vs DQ cosine %.6f)\n\n",
                rmse(grads, via_clip),
                cosineSimilarity(grads, via_clip),
                cosineSimilarity(grads, via_dq));

    // ---- 5. Compression (Sec. III-A of the paper) ----
    std::printf("  compression vs FP32: DQ %.4fx, LDQ(K=1024) %.4fx\n\n",
                quant::dqCompressionRatio(grads.numel()),
                quant::ldqCompressionRatio(grads.numel(), 1024));

    // ---- 6. The PE array's bit-serial exactness ----
    std::vector<std::int32_t> a{100, -57, 23, -128 + 1};
    std::vector<std::int32_t> b{-45, 111, -9, 127};
    std::int64_t expect = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        expect += static_cast<std::int64_t>(a[i]) * b[i];
    const std::int64_t got = arch::PeArray::dotProduct(a, 8, b, 8);
    std::printf("  4-bit PE array INT8 dot product: %lld (exact %lld, "
                "%s)\n",
                static_cast<long long>(got),
                static_cast<long long>(expect),
                got == expect ? "match" : "MISMATCH");
    return got == expect ? 0 : 1;
}
