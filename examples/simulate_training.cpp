/**
 * @file
 * Simulate one quantized-training minibatch of a Table VI network on
 * Cambricon-Q, Cambricon-Q without NDP, the TPU baseline and the
 * Jetson TX2 GPU model, printing time, energy and the phase
 * breakdown.
 *
 * Usage: simulate_training [alexnet|resnet18|googlenet|squeezenet|
 *                           transformer|lstm|tiny]   (default resnet18)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "arch/accelerator.h"
#include "baseline/gpu_model.h"
#include "baseline/tpu_sim.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"

using namespace cq;

namespace {

compiler::WorkloadIR
pickWorkload(const std::string &name)
{
    if (name == "alexnet")
        return compiler::buildAlexNet();
    if (name == "googlenet")
        return compiler::buildGoogLeNet();
    if (name == "squeezenet")
        return compiler::buildSqueezeNet();
    if (name == "transformer")
        return compiler::buildTransformerBase();
    if (name == "lstm")
        return compiler::buildPtbLstm();
    if (name == "tiny")
        return compiler::buildTinyCnn();
    return compiler::buildResNet18();
}

void
printReport(const arch::PerfReport &r)
{
    std::printf("  %-22s %9.2f ms  %8.2f mJ   phases:",
                r.configName.c_str(), r.timeMs(), r.energyMj());
    for (std::size_t p = 0; p < arch::kNumPhases; ++p) {
        std::printf(" %s=%4.1f%%",
                    arch::phaseName(static_cast<arch::Phase>(p)),
                    100.0 * r.phaseFraction(
                                static_cast<arch::Phase>(p)));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "resnet18";
    const compiler::WorkloadIR ir = pickWorkload(which);

    std::printf("workload %s: batch %zu, %.2f GMACs/minibatch, "
                "%.1f M weights\n\n",
                ir.name.c_str(), ir.batch, ir.totalMacs / 1e9,
                ir.totalWeights / 1e6);

    const compiler::CodegenOptions opts;

    // Cambricon-Q (with NDP).
    {
        const auto cfg = arch::CambriconQConfig::edge();
        arch::Accelerator acc(cfg);
        printReport(acc.run(compiler::generateProgram(ir, cfg, opts)));
    }
    // Cambricon-Q without the NDP engine (Sec. VII-D ablation).
    {
        const auto cfg = arch::CambriconQConfig::edgeNoNdp();
        arch::Accelerator acc(cfg);
        printReport(acc.run(compiler::generateProgram(ir, cfg, opts)));
    }
    // TPU baseline.
    printReport(baseline::simulateTpu(ir, opts));

    // GPU (analytical).
    const auto gpu = baseline::GpuSpec::jetsonTx2();
    const auto fp32 = baseline::simulateGpu(ir, gpu, false);
    const auto quant = baseline::simulateGpu(ir, gpu, true);
    std::printf("  %-22s %9.2f ms  %8.2f mJ   (FP32 training)\n",
                gpu.name.c_str(), fp32.timeMs, fp32.energyMj);
    std::printf("  %-22s %9.2f ms  %8.2f mJ   (quantized, %.2fx vs "
                "FP32)\n",
                gpu.name.c_str(), quant.timeMs, quant.energyMj,
                quant.timeMs / fp32.timeMs);
    return 0;
}
