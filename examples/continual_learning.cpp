/**
 * @file
 * On-device continual learning: the edge-training scenario that
 * motivates Cambricon-Q.
 *
 * A small CNN is pre-trained on distribution A (clean patterns). The
 * deployment distribution drifts (rotated patterns + heavier noise),
 * accuracy collapses, and the device adapts with a few hundred
 * quantized-training steps (Zhang'20 + HQT, the algorithm/hardware of
 * the paper). The example reports (1) the accuracy trajectory of the
 * adaptation and (2) the modeled time and energy the adaptation costs
 * on Cambricon-Q versus the Jetson TX2 -- the end-to-end story of the
 * paper in one run.
 */

#include <cstdio>
#include <memory>

#include "arch/accelerator.h"
#include "baseline/gpu_model.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"

using namespace cq;

namespace {

nn::Network
makeCnn(std::uint64_t seed, std::size_t classes)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, 8, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("r1", nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("p1", 2, 2));
    net.add(std::make_unique<nn::Conv2d>(
        "conv2", Conv2dGeometry{8, 16, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("r2", nn::ActKind::ReLU));
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", 16, classes, rng));
    return net;
}

} // namespace

int
main()
{
    const std::size_t classes = 4;
    // Distribution A: the patterns the model shipped with.
    // Distribution B: the field distribution (different seed shifts
    // the class-phase relationship; higher noise).
    nn::PatternImageDataset dist_a(classes, 1, 12, 12, 0.6, 100);
    nn::PatternImageDataset dist_b(classes, 1, 12, 12, 1.4, 2718);

    nn::Network net = makeCnn(5, classes);
    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(256);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    nn::QuantTrainer trainer(net, cfg);

    std::printf("phase 1: factory training on distribution A "
                "(quantized, %s)\n",
                cfg.algorithm.name.c_str());
    for (int step = 0; step < 150; ++step) {
        const auto b = dist_a.sample(32);
        trainer.stepClassification(b.inputs, b.labels);
    }
    const auto eval_a = dist_a.evalSet(512);
    const auto eval_b = dist_b.evalSet(512);
    std::printf("  accuracy on A: %.1f%%   on drifted B: %.1f%%\n\n",
                100.0 * trainer.evalAccuracy(eval_a.inputs,
                                             eval_a.labels),
                100.0 * trainer.evalAccuracy(eval_b.inputs,
                                             eval_b.labels));

    std::printf("phase 2: on-device adaptation to distribution B\n");
    const int adapt_steps = 150;
    for (int step = 0; step < adapt_steps; ++step) {
        const auto b = dist_b.sample(32);
        trainer.stepClassification(b.inputs, b.labels);
        if ((step + 1) % 50 == 0) {
            std::printf("  after %3d steps: B accuracy %.1f%%\n",
                        step + 1,
                        100.0 * trainer.evalAccuracy(eval_b.inputs,
                                                     eval_b.labels));
        }
    }

    // ---- What does the adaptation cost on the hardware? ----
    // Per-minibatch cost of a comparable edge CNN (SqueezeNet-class)
    // from the timing simulator, scaled by the adaptation length.
    std::printf("\nphase 3: hardware cost of the %d-step adaptation "
                "(SqueezeNet-class stand-in)\n",
                adapt_steps);
    const compiler::WorkloadIR ir = compiler::buildSqueezeNet();
    const auto cq_cfg = arch::CambriconQConfig::edge();
    arch::Accelerator acc(cq_cfg);
    const auto cq = acc.run(compiler::generateProgram(
        ir, cq_cfg, compiler::CodegenOptions{}));
    const auto gpu = baseline::simulateGpu(
        ir, baseline::GpuSpec::jetsonTx2(), true);

    std::printf("  %-14s %8.1f s  %8.1f J\n", "Cambricon-Q",
                cq.timeMs() * adapt_steps / 1e3,
                cq.energyMj() * adapt_steps / 1e3);
    std::printf("  %-14s %8.1f s  %8.1f J   (%.1fx slower, %.1fx "
                "more energy)\n",
                "Jetson TX2", gpu.timeMs * adapt_steps / 1e3,
                gpu.energyMj * adapt_steps / 1e3,
                gpu.timeMs / cq.timeMs(),
                gpu.energyMj / cq.energyMj());
    return 0;
}
