/**
 * @file
 * NDP engine demo: configure the NDPO for each optimizer of the
 * paper's Table IV, run in-place weight updates against simulated
 * DRAM rows, verify bit-exactness against the software optimizer,
 * and show the DDR-bus traffic / latency advantage over an explicit
 * (non-NDP) update.
 */

#include <cstdio>
#include <vector>

#include "arch/ndp_engine.h"
#include "common/rng.h"
#include "dram/dram_controller.h"
#include "nn/optimizer.h"

using namespace cq;

int
main()
{
    const std::size_t weights = 1 << 20; // 1M-weight layer

    std::printf("NDP engine demo: %zu weights per layer\n\n", weights);
    std::printf("  %-8s | functional check | bus bytes (NDP vs "
                "explicit) | update time\n",
                "optim");

    for (auto kind :
         {nn::OptimizerKind::SGD, nn::OptimizerKind::AdaGrad,
          nn::OptimizerKind::RMSProp, nn::OptimizerKind::Adam}) {
        nn::OptimizerConfig ocfg;
        ocfg.kind = kind;
        ocfg.lr = 0.01;

        // ---- functional: NDPO vs software optimizer ----
        Rng rng(1);
        nn::Param param("w", {4096});
        param.value.fillGaussian(rng, 0.0f, 0.5f);
        for (std::size_t i = 0; i < param.grad.numel(); ++i)
            param.grad[i] = static_cast<float>(rng.gaussian(0.0, 0.1));

        std::vector<float> w(param.value.vec());
        std::vector<float> m(w.size(), 0.0f), v(w.size(), 0.0f);
        std::vector<float> g(param.grad.vec());

        nn::Optimizer sw(ocfg);
        sw.attach({&param});
        sw.step();

        arch::NdpEngine ndp;
        ndp.configure(nn::NdpoConstants::forStep(ocfg, 1)); // CROSET
        ndp.weightGradientStore(w, m, v, g);                // WGSTORE

        bool exact = true;
        for (std::size_t i = 0; i < w.size(); ++i)
            exact = exact && w[i] == param.value[i];

        // ---- timing/traffic: NDP vs explicit update ----
        dram::DramController ndp_mem(dram::DramConfig::lpddr4_2133());
        const Tick t_ndp = ndp_mem.ndpUpdate(0, 0, weights, 4);

        dram::DramController exp_mem(dram::DramConfig::lpddr4_2133());
        const unsigned state =
            kind == nn::OptimizerKind::SGD
                ? 0
                : (kind == nn::OptimizerKind::Adam ? 2 : 1);
        Tick t = 0;
        t = exp_mem.transfer(t, 0x00000000, weights * 4, false); // dW
        t = exp_mem.transfer(t, 0x10000000, weights * 4, false); // w
        for (unsigned s = 0; s < state; ++s)
            t = exp_mem.transfer(t, 0x20000000 + s * 0x10000000,
                                 weights * 4, false);
        t = exp_mem.transfer(t, 0x10000000, weights * 4, true);
        for (unsigned s = 0; s < state; ++s)
            t = exp_mem.transfer(t, 0x20000000 + s * 0x10000000,
                                 weights * 4, true);

        std::printf("  %-8s | %-16s | %6.1f MB vs %6.1f MB       | "
                    "%5.2f ms vs %5.2f ms\n",
                    nn::optimizerKindName(kind),
                    exact ? "bit-exact" : "MISMATCH",
                    ndp_mem.busBytes() / 1e6, exp_mem.busBytes() / 1e6,
                    t_ndp / 1e6, t / 1e6);
    }
    return 0;
}
