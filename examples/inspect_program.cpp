/**
 * @file
 * Compiler/simulator introspection: lower a workload to the
 * Cambricon-Q instruction stream, disassemble a window of it, and run
 * it with tracing enabled to print per-unit utilization and a
 * coarse-grained text timeline of the load/compute/store overlap.
 *
 * Usage: inspect_program [tiny|alexnet|resnet18|...] [start [count]]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/accelerator.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"

using namespace cq;

namespace {

compiler::WorkloadIR
pickWorkload(const std::string &name)
{
    if (name == "alexnet")
        return compiler::buildAlexNet();
    if (name == "resnet18")
        return compiler::buildResNet18();
    if (name == "googlenet")
        return compiler::buildGoogLeNet();
    if (name == "squeezenet")
        return compiler::buildSqueezeNet();
    if (name == "transformer")
        return compiler::buildTransformerBase();
    if (name == "lstm")
        return compiler::buildPtbLstm();
    return compiler::buildTinyCnn();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "tiny";
    const std::size_t start =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
    const std::size_t count =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 24;

    const compiler::WorkloadIR ir = pickWorkload(which);
    const auto cfg = arch::CambriconQConfig::edge();
    const arch::Program prog =
        compiler::generateProgram(ir, cfg, compiler::CodegenOptions{});

    // ---- static program summary ----
    std::size_t by_op[32] = {};
    for (const auto &ins : prog)
        ++by_op[static_cast<std::size_t>(ins.op)];
    const auto traffic = compiler::summarizeTraffic(prog);
    std::printf("%s: %zu instructions, %.2f GB loads, %.2f GB "
                "stores, %.2f GB full-precision\n\n",
                ir.name.c_str(), prog.size(), traffic.loadBytes / 1e9,
                traffic.storeBytes / 1e9,
                traffic.fullPrecisionBytes / 1e9);
    std::printf("opcode histogram:\n");
    for (std::size_t op = 0; op < 32; ++op) {
        if (by_op[op] > 0) {
            std::printf("  %-8s %8zu\n",
                        arch::opcodeName(
                            static_cast<arch::Opcode>(op)),
                        by_op[op]);
        }
    }

    // ---- disassembly window ----
    std::printf("\ndisassembly [%zu, %zu):\n", start,
                std::min(prog.size(), start + count));
    for (std::size_t i = start;
         i < std::min(prog.size(), start + count); ++i) {
        std::printf("  %6zu: %s\n", i, prog[i].toString().c_str());
    }

    // ---- traced execution ----
    arch::Accelerator acc(cfg);
    const auto report = acc.run(prog, /*collect_trace=*/true);
    std::printf("\nexecution: %llu cycles (%.3f ms), %zu trace "
                "entries\n",
                static_cast<unsigned long long>(report.totalTicks),
                report.timeMs(), report.trace.size());
    std::printf("unit utilization:\n");
    for (std::size_t u = 0; u < arch::kNumUnits; ++u) {
        std::printf("  %-10s %5.1f%%\n",
                    arch::unitName(static_cast<arch::Unit>(u)),
                    100.0 * report.unitBusy[u] /
                        static_cast<double>(report.totalTicks));
    }

    // ---- coarse text timeline: 64 buckets x 5 units ----
    const std::size_t buckets = 64;
    const double per_bucket =
        static_cast<double>(report.totalTicks) / buckets;
    std::printf("\ntimeline (each column = %.0f cycles; '#' busy > "
                "50%%, '+' > 10%%):\n",
                per_bucket);
    for (std::size_t u = 0; u < arch::kNumUnits; ++u) {
        double busy[64] = {};
        for (const auto &e : report.trace) {
            if (static_cast<std::size_t>(e.unit) != u)
                continue;
            const double b0 = e.start / per_bucket;
            const double b1 =
                std::max(static_cast<double>(e.end),
                         static_cast<double>(e.start) + 1.0) /
                per_bucket;
            for (std::size_t b = static_cast<std::size_t>(b0);
                 b < std::min<std::size_t>(buckets,
                                           static_cast<std::size_t>(
                                               b1) + 1);
                 ++b) {
                const double lo =
                    std::max(static_cast<double>(b) * per_bucket,
                             static_cast<double>(e.start));
                const double hi = std::min(
                    (static_cast<double>(b) + 1.0) * per_bucket,
                    static_cast<double>(e.end));
                if (hi > lo)
                    busy[b] += hi - lo;
            }
        }
        std::printf("  %-10s ",
                    arch::unitName(static_cast<arch::Unit>(u)));
        for (std::size_t b = 0; b < buckets; ++b) {
            const double frac = busy[b] / per_bucket;
            std::putchar(frac > 0.5 ? '#' : (frac > 0.1 ? '+' : '.'));
        }
        std::putchar('\n');
    }
    return 0;
}
