/**
 * @file
 * End-to-end quantized training on a synthetic image-classification
 * task: FP32 baseline versus the Zhang-2020-style INT8/INT16
 * algorithm with and without HQT, using the same seeds so the only
 * difference is the quantization policy (the software analogue of
 * the paper's Table VIII).
 */

#include <cstdio>
#include <memory>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"

using namespace cq;

namespace {

nn::Network
makeCnn(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, 8, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu1",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2, 2));
    net.add(std::make_unique<nn::Conv2d>(
        "conv2", Conv2dGeometry{8, 16, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu2",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", 16, 4, rng, true));
    return net;
}

double
trainAndEval(const quant::AlgorithmConfig &algo)
{
    nn::PatternImageDataset data(4, 1, 12, 12, 0.35, 99);
    nn::Network net = makeCnn(7);

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    nn::QuantTrainer trainer(net, cfg);

    for (int step = 0; step < 120; ++step) {
        const auto batch = data.sample(32);
        trainer.stepClassification(batch.inputs, batch.labels);
    }
    const auto eval = data.evalSet(512);
    return trainer.evalAccuracy(eval.inputs, eval.labels);
}

} // namespace

int
main()
{
    std::printf("quantized training on the synthetic pattern task "
                "(4 classes, 120 steps, batch 32)\n\n");
    struct Entry
    {
        const char *label;
        quant::AlgorithmConfig algo;
    };
    const Entry entries[] = {
        {"FP32", quant::AlgorithmConfig::fp32()},
        {"Zhang2020 (INT8/16)", quant::AlgorithmConfig::zhang2020()},
        {"Zhang2020 + HQT", quant::AlgorithmConfig::zhang2020Hqt(256)},
    };
    double fp32_acc = 0.0;
    for (const auto &e : entries) {
        const double acc = trainAndEval(e.algo);
        if (e.algo.name == "FP32")
            fp32_acc = acc;
        std::printf("  %-22s accuracy %.1f%%  (delta %+.1f%%)\n",
                    e.label, 100.0 * acc,
                    100.0 * (acc - fp32_acc));
    }
    return 0;
}
