file(REMOVE_RECURSE
  "CMakeFiles/test_float_formats.dir/test_float_formats.cc.o"
  "CMakeFiles/test_float_formats.dir/test_float_formats.cc.o.d"
  "test_float_formats"
  "test_float_formats.pdb"
  "test_float_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
