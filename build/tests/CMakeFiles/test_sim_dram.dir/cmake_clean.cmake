file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dram.dir/test_sim_dram.cc.o"
  "CMakeFiles/test_sim_dram.dir/test_sim_dram.cc.o.d"
  "test_sim_dram"
  "test_sim_dram.pdb"
  "test_sim_dram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
