# Empty dependencies file for test_sim_dram.
# This may be replaced when dependencies are built.
