file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_properties.dir/test_codegen_properties.cc.o"
  "CMakeFiles/test_codegen_properties.dir/test_codegen_properties.cc.o.d"
  "test_codegen_properties"
  "test_codegen_properties.pdb"
  "test_codegen_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
