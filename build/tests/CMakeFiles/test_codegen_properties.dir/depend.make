# Empty dependencies file for test_codegen_properties.
# This may be replaced when dependencies are built.
