# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_sim_dram[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_properties[1]_include.cmake")
include("/root/repo/build/tests/test_float_formats[1]_include.cmake")
