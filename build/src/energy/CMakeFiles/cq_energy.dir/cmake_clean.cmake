file(REMOVE_RECURSE
  "CMakeFiles/cq_energy.dir/energy_model.cc.o"
  "CMakeFiles/cq_energy.dir/energy_model.cc.o.d"
  "libcq_energy.a"
  "libcq_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
