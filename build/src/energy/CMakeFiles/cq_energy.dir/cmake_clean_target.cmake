file(REMOVE_RECURSE
  "libcq_energy.a"
)
