# Empty compiler generated dependencies file for cq_energy.
# This may be replaced when dependencies are built.
