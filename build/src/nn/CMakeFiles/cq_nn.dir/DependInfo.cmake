
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/cq_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/cq_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/cq_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/cq_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/datasets.cc" "src/nn/CMakeFiles/cq_nn.dir/datasets.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/datasets.cc.o.d"
  "/root/repo/src/nn/layernorm.cc" "src/nn/CMakeFiles/cq_nn.dir/layernorm.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/layernorm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/cq_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/cq_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/cq_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/cq_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/nn/CMakeFiles/cq_nn.dir/pooling.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/pooling.cc.o.d"
  "/root/repo/src/nn/quant_trainer.cc" "src/nn/CMakeFiles/cq_nn.dir/quant_trainer.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/quant_trainer.cc.o.d"
  "/root/repo/src/nn/residual.cc" "src/nn/CMakeFiles/cq_nn.dir/residual.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/residual.cc.o.d"
  "/root/repo/src/nn/softmax.cc" "src/nn/CMakeFiles/cq_nn.dir/softmax.cc.o" "gcc" "src/nn/CMakeFiles/cq_nn.dir/softmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
