file(REMOVE_RECURSE
  "libcq_nn.a"
)
