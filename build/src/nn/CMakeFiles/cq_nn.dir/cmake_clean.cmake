file(REMOVE_RECURSE
  "CMakeFiles/cq_nn.dir/activation.cc.o"
  "CMakeFiles/cq_nn.dir/activation.cc.o.d"
  "CMakeFiles/cq_nn.dir/attention.cc.o"
  "CMakeFiles/cq_nn.dir/attention.cc.o.d"
  "CMakeFiles/cq_nn.dir/batchnorm.cc.o"
  "CMakeFiles/cq_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/cq_nn.dir/conv2d.cc.o"
  "CMakeFiles/cq_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/cq_nn.dir/datasets.cc.o"
  "CMakeFiles/cq_nn.dir/datasets.cc.o.d"
  "CMakeFiles/cq_nn.dir/layernorm.cc.o"
  "CMakeFiles/cq_nn.dir/layernorm.cc.o.d"
  "CMakeFiles/cq_nn.dir/linear.cc.o"
  "CMakeFiles/cq_nn.dir/linear.cc.o.d"
  "CMakeFiles/cq_nn.dir/lstm.cc.o"
  "CMakeFiles/cq_nn.dir/lstm.cc.o.d"
  "CMakeFiles/cq_nn.dir/network.cc.o"
  "CMakeFiles/cq_nn.dir/network.cc.o.d"
  "CMakeFiles/cq_nn.dir/optimizer.cc.o"
  "CMakeFiles/cq_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/cq_nn.dir/pooling.cc.o"
  "CMakeFiles/cq_nn.dir/pooling.cc.o.d"
  "CMakeFiles/cq_nn.dir/quant_trainer.cc.o"
  "CMakeFiles/cq_nn.dir/quant_trainer.cc.o.d"
  "CMakeFiles/cq_nn.dir/residual.cc.o"
  "CMakeFiles/cq_nn.dir/residual.cc.o.d"
  "CMakeFiles/cq_nn.dir/softmax.cc.o"
  "CMakeFiles/cq_nn.dir/softmax.cc.o.d"
  "libcq_nn.a"
  "libcq_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
