file(REMOVE_RECURSE
  "CMakeFiles/cq_quant.dir/block_quant.cc.o"
  "CMakeFiles/cq_quant.dir/block_quant.cc.o.d"
  "CMakeFiles/cq_quant.dir/e2bqm.cc.o"
  "CMakeFiles/cq_quant.dir/e2bqm.cc.o.d"
  "CMakeFiles/cq_quant.dir/policy.cc.o"
  "CMakeFiles/cq_quant.dir/policy.cc.o.d"
  "CMakeFiles/cq_quant.dir/qformat.cc.o"
  "CMakeFiles/cq_quant.dir/qformat.cc.o.d"
  "CMakeFiles/cq_quant.dir/statistics.cc.o"
  "CMakeFiles/cq_quant.dir/statistics.cc.o.d"
  "libcq_quant.a"
  "libcq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
