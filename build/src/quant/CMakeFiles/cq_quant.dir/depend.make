# Empty dependencies file for cq_quant.
# This may be replaced when dependencies are built.
