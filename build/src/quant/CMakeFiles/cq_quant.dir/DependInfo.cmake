
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/block_quant.cc" "src/quant/CMakeFiles/cq_quant.dir/block_quant.cc.o" "gcc" "src/quant/CMakeFiles/cq_quant.dir/block_quant.cc.o.d"
  "/root/repo/src/quant/e2bqm.cc" "src/quant/CMakeFiles/cq_quant.dir/e2bqm.cc.o" "gcc" "src/quant/CMakeFiles/cq_quant.dir/e2bqm.cc.o.d"
  "/root/repo/src/quant/policy.cc" "src/quant/CMakeFiles/cq_quant.dir/policy.cc.o" "gcc" "src/quant/CMakeFiles/cq_quant.dir/policy.cc.o.d"
  "/root/repo/src/quant/qformat.cc" "src/quant/CMakeFiles/cq_quant.dir/qformat.cc.o" "gcc" "src/quant/CMakeFiles/cq_quant.dir/qformat.cc.o.d"
  "/root/repo/src/quant/statistics.cc" "src/quant/CMakeFiles/cq_quant.dir/statistics.cc.o" "gcc" "src/quant/CMakeFiles/cq_quant.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
