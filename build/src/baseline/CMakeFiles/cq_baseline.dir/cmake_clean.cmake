file(REMOVE_RECURSE
  "CMakeFiles/cq_baseline.dir/gpu_model.cc.o"
  "CMakeFiles/cq_baseline.dir/gpu_model.cc.o.d"
  "CMakeFiles/cq_baseline.dir/tpu_sim.cc.o"
  "CMakeFiles/cq_baseline.dir/tpu_sim.cc.o.d"
  "libcq_baseline.a"
  "libcq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
