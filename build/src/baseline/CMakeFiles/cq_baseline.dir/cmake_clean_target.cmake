file(REMOVE_RECURSE
  "libcq_baseline.a"
)
