# Empty compiler generated dependencies file for cq_baseline.
# This may be replaced when dependencies are built.
