# Empty compiler generated dependencies file for cq_arch.
# This may be replaced when dependencies are built.
