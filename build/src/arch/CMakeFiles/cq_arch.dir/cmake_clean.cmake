file(REMOVE_RECURSE
  "CMakeFiles/cq_arch.dir/accelerator.cc.o"
  "CMakeFiles/cq_arch.dir/accelerator.cc.o.d"
  "CMakeFiles/cq_arch.dir/config.cc.o"
  "CMakeFiles/cq_arch.dir/config.cc.o.d"
  "CMakeFiles/cq_arch.dir/isa.cc.o"
  "CMakeFiles/cq_arch.dir/isa.cc.o.d"
  "CMakeFiles/cq_arch.dir/ndp_engine.cc.o"
  "CMakeFiles/cq_arch.dir/ndp_engine.cc.o.d"
  "CMakeFiles/cq_arch.dir/pe_array.cc.o"
  "CMakeFiles/cq_arch.dir/pe_array.cc.o.d"
  "CMakeFiles/cq_arch.dir/qbc.cc.o"
  "CMakeFiles/cq_arch.dir/qbc.cc.o.d"
  "CMakeFiles/cq_arch.dir/quantized_gemm.cc.o"
  "CMakeFiles/cq_arch.dir/quantized_gemm.cc.o.d"
  "CMakeFiles/cq_arch.dir/squ.cc.o"
  "CMakeFiles/cq_arch.dir/squ.cc.o.d"
  "libcq_arch.a"
  "libcq_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
