file(REMOVE_RECURSE
  "libcq_arch.a"
)
