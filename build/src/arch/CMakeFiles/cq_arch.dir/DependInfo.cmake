
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator.cc" "src/arch/CMakeFiles/cq_arch.dir/accelerator.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/accelerator.cc.o.d"
  "/root/repo/src/arch/config.cc" "src/arch/CMakeFiles/cq_arch.dir/config.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/config.cc.o.d"
  "/root/repo/src/arch/isa.cc" "src/arch/CMakeFiles/cq_arch.dir/isa.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/isa.cc.o.d"
  "/root/repo/src/arch/ndp_engine.cc" "src/arch/CMakeFiles/cq_arch.dir/ndp_engine.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/ndp_engine.cc.o.d"
  "/root/repo/src/arch/pe_array.cc" "src/arch/CMakeFiles/cq_arch.dir/pe_array.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/pe_array.cc.o.d"
  "/root/repo/src/arch/qbc.cc" "src/arch/CMakeFiles/cq_arch.dir/qbc.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/qbc.cc.o.d"
  "/root/repo/src/arch/quantized_gemm.cc" "src/arch/CMakeFiles/cq_arch.dir/quantized_gemm.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/quantized_gemm.cc.o.d"
  "/root/repo/src/arch/squ.cc" "src/arch/CMakeFiles/cq_arch.dir/squ.cc.o" "gcc" "src/arch/CMakeFiles/cq_arch.dir/squ.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cq_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/cq_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
