file(REMOVE_RECURSE
  "CMakeFiles/cq_dram.dir/dram_controller.cc.o"
  "CMakeFiles/cq_dram.dir/dram_controller.cc.o.d"
  "libcq_dram.a"
  "libcq_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
