# Empty compiler generated dependencies file for cq_dram.
# This may be replaced when dependencies are built.
