file(REMOVE_RECURSE
  "libcq_dram.a"
)
