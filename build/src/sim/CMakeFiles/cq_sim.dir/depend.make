# Empty dependencies file for cq_sim.
# This may be replaced when dependencies are built.
