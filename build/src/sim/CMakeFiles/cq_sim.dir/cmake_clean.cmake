file(REMOVE_RECURSE
  "CMakeFiles/cq_sim.dir/event_queue.cc.o"
  "CMakeFiles/cq_sim.dir/event_queue.cc.o.d"
  "libcq_sim.a"
  "libcq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
