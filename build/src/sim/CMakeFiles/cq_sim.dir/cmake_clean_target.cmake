file(REMOVE_RECURSE
  "libcq_sim.a"
)
