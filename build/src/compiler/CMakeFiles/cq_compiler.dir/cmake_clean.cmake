file(REMOVE_RECURSE
  "CMakeFiles/cq_compiler.dir/codegen.cc.o"
  "CMakeFiles/cq_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/cq_compiler.dir/workload_ir.cc.o"
  "CMakeFiles/cq_compiler.dir/workload_ir.cc.o.d"
  "CMakeFiles/cq_compiler.dir/workloads.cc.o"
  "CMakeFiles/cq_compiler.dir/workloads.cc.o.d"
  "libcq_compiler.a"
  "libcq_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
