
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/codegen.cc" "src/compiler/CMakeFiles/cq_compiler.dir/codegen.cc.o" "gcc" "src/compiler/CMakeFiles/cq_compiler.dir/codegen.cc.o.d"
  "/root/repo/src/compiler/workload_ir.cc" "src/compiler/CMakeFiles/cq_compiler.dir/workload_ir.cc.o" "gcc" "src/compiler/CMakeFiles/cq_compiler.dir/workload_ir.cc.o.d"
  "/root/repo/src/compiler/workloads.cc" "src/compiler/CMakeFiles/cq_compiler.dir/workloads.cc.o" "gcc" "src/compiler/CMakeFiles/cq_compiler.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cq_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cq_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/cq_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
