file(REMOVE_RECURSE
  "libcq_compiler.a"
)
