# Empty compiler generated dependencies file for cq_compiler.
# This may be replaced when dependencies are built.
