file(REMOVE_RECURSE
  "CMakeFiles/cq_tensor.dir/tensor.cc.o"
  "CMakeFiles/cq_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/cq_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/cq_tensor.dir/tensor_ops.cc.o.d"
  "libcq_tensor.a"
  "libcq_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
