file(REMOVE_RECURSE
  "libcq_tensor.a"
)
