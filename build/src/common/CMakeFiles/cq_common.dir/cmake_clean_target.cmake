file(REMOVE_RECURSE
  "libcq_common.a"
)
