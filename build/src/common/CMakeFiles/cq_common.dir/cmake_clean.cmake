file(REMOVE_RECURSE
  "CMakeFiles/cq_common.dir/logging.cc.o"
  "CMakeFiles/cq_common.dir/logging.cc.o.d"
  "CMakeFiles/cq_common.dir/rng.cc.o"
  "CMakeFiles/cq_common.dir/rng.cc.o.d"
  "CMakeFiles/cq_common.dir/stats.cc.o"
  "CMakeFiles/cq_common.dir/stats.cc.o.d"
  "libcq_common.a"
  "libcq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
