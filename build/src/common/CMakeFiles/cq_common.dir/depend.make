# Empty dependencies file for cq_common.
# This may be replaced when dependencies are built.
