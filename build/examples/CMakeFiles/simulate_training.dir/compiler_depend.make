# Empty compiler generated dependencies file for simulate_training.
# This may be replaced when dependencies are built.
