file(REMOVE_RECURSE
  "CMakeFiles/simulate_training.dir/simulate_training.cpp.o"
  "CMakeFiles/simulate_training.dir/simulate_training.cpp.o.d"
  "simulate_training"
  "simulate_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
