# Empty compiler generated dependencies file for continual_learning.
# This may be replaced when dependencies are built.
