# Empty compiler generated dependencies file for inspect_program.
# This may be replaced when dependencies are built.
