file(REMOVE_RECURSE
  "CMakeFiles/inspect_program.dir/inspect_program.cpp.o"
  "CMakeFiles/inspect_program.dir/inspect_program.cpp.o.d"
  "inspect_program"
  "inspect_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
