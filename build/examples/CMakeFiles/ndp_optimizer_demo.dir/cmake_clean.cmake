file(REMOVE_RECURSE
  "CMakeFiles/ndp_optimizer_demo.dir/ndp_optimizer_demo.cpp.o"
  "CMakeFiles/ndp_optimizer_demo.dir/ndp_optimizer_demo.cpp.o.d"
  "ndp_optimizer_demo"
  "ndp_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
