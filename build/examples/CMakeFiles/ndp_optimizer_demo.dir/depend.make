# Empty dependencies file for ndp_optimizer_demo.
# This may be replaced when dependencies are built.
