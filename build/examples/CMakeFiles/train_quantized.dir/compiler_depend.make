# Empty compiler generated dependencies file for train_quantized.
# This may be replaced when dependencies are built.
