file(REMOVE_RECURSE
  "CMakeFiles/train_quantized.dir/train_quantized.cpp.o"
  "CMakeFiles/train_quantized.dir/train_quantized.cpp.o.d"
  "train_quantized"
  "train_quantized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_quantized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
