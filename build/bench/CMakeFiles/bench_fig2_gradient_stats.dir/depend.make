# Empty dependencies file for bench_fig2_gradient_stats.
# This may be replaced when dependencies are built.
