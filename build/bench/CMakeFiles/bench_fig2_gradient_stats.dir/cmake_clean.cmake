file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gradient_stats.dir/bench_fig2_gradient_stats.cc.o"
  "CMakeFiles/bench_fig2_gradient_stats.dir/bench_fig2_gradient_stats.cc.o.d"
  "bench_fig2_gradient_stats"
  "bench_fig2_gradient_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gradient_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
