file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_accuracy.dir/bench_table8_accuracy.cc.o"
  "CMakeFiles/bench_table8_accuracy.dir/bench_table8_accuracy.cc.o.d"
  "bench_table8_accuracy"
  "bench_table8_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
