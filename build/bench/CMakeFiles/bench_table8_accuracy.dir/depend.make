# Empty dependencies file for bench_table8_accuracy.
# This may be replaced when dependencies are built.
