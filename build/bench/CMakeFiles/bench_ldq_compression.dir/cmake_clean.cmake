file(REMOVE_RECURSE
  "CMakeFiles/bench_ldq_compression.dir/bench_ldq_compression.cc.o"
  "CMakeFiles/bench_ldq_compression.dir/bench_ldq_compression.cc.o.d"
  "bench_ldq_compression"
  "bench_ldq_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldq_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
