# Empty compiler generated dependencies file for bench_ldq_compression.
# This may be replaced when dependencies are built.
