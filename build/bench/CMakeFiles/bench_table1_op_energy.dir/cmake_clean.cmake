file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_op_energy.dir/bench_table1_op_energy.cc.o"
  "CMakeFiles/bench_table1_op_energy.dir/bench_table1_op_energy.cc.o.d"
  "bench_table1_op_energy"
  "bench_table1_op_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_op_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
