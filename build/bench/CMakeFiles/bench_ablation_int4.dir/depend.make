# Empty dependencies file for bench_ablation_int4.
# This may be replaced when dependencies are built.
