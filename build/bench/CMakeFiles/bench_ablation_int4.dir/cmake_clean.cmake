file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_int4.dir/bench_ablation_int4.cc.o"
  "CMakeFiles/bench_ablation_int4.dir/bench_ablation_int4.cc.o.d"
  "bench_ablation_int4"
  "bench_ablation_int4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_int4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
