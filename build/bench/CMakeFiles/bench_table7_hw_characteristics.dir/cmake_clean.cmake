file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_hw_characteristics.dir/bench_table7_hw_characteristics.cc.o"
  "CMakeFiles/bench_table7_hw_characteristics.dir/bench_table7_hw_characteristics.cc.o.d"
  "bench_table7_hw_characteristics"
  "bench_table7_hw_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_hw_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
