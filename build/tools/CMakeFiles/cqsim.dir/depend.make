# Empty dependencies file for cqsim.
# This may be replaced when dependencies are built.
