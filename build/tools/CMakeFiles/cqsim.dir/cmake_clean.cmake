file(REMOVE_RECURSE
  "CMakeFiles/cqsim.dir/cqsim.cc.o"
  "CMakeFiles/cqsim.dir/cqsim.cc.o.d"
  "cqsim"
  "cqsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
