/**
 * @file
 * Table I: per-operation energy and relative costs of different
 * bit-width operations at 45 nm. The energy model's constants are
 * printed next to the paper's values; the relative-cost column is
 * recomputed against the INT8 ADD baseline exactly as the paper does.
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace cq;

namespace {

struct Row
{
    const char *bitwidth;
    const char *operation;
    double ours;     // pJ
    double paper;    // pJ (Table I; mid of ranges for DRAM)
};

} // namespace

int
main()
{
    using namespace energy::op;
    bench::banner("Table I -- energy of operations (45 nm)",
                  "Cambricon-Q, ISCA'21, Table I");

    const Row rows[] = {
        {"32-bit", "FP ADD", kFp32Add, 0.9},
        {"32-bit", "FP MUL", kFp32Mul, 3.7},
        {"32-bit", "INT ADD", kInt32Add, 0.1},
        {"32-bit", "INT MUL", kInt32Mul, 3.1},
        {"32-bit", "DRAM access (avg)", dramAccess(32), 975.0},
        {"16-bit", "FP ADD", kFp16Add, 0.4},
        {"16-bit", "FP MUL", kFp16Mul, 1.1},
        {"16-bit", "INT ADD", kInt16Add, 0.05},
        {"16-bit", "INT MUL", kInt16Mul, 1.55},
        {"16-bit", "DRAM access (avg)", dramAccess(16), 490.0},
        {"8-bit", "INT ADD", kInt8Add, 0.03},
        {"8-bit", "INT MUL", kInt8Mul, 0.2},
        {"8-bit", "DRAM access (avg)", dramAccess(8), 245.0},
    };

    const double base = kInt8Add; // the paper's "relative cost 1"
    std::printf("%-8s %-20s %12s %12s %14s\n", "width", "operation",
                "ours (pJ)", "paper (pJ)", "rel. cost");
    bench::rule();
    for (const auto &r : rows) {
        std::printf("%-8s %-20s %12.3f %12.3f %14.2f\n", r.bitwidth,
                    r.operation, r.ours, r.paper, r.ours / base);
    }
    bench::rule();
    std::printf("note: DRAM entries are mid-points of the paper's "
                "ranges (e.g. 0.65~1.3 nJ @ 32-bit).\n");
    return 0;
}
