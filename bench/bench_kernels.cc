/**
 * @file
 * google-benchmark microbenchmarks of the software kernels the
 * repository is built on: streaming statistics, LDQ / E2BQM
 * quantization, GEMM, the bit-serial PE datapath, the NDPO update and
 * the DRAM controller's transfer hot path.
 */

#include <benchmark/benchmark.h>

#include "arch/ndp_engine.h"
#include "arch/pe_array.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "dram/dram_controller.h"
#include "nn/optimizer.h"
#include "quant/block_quant.h"
#include "quant/e2bqm.h"
#include "quant/statistics.h"
#include "tensor/tensor_ops.h"

using namespace cq;

namespace {

Tensor
gradientTensor(std::size_t n)
{
    Rng rng(7);
    Tensor x({n});
    x.fillGaussian(rng, 0.0f, 0.01f);
    return x;
}

void
BM_MaxAbsStat(benchmark::State &state)
{
    const Tensor x = gradientTensor(1 << 16);
    for (auto _ : state) {
        quant::MaxAbsStat stat;
        for (std::size_t i = 0; i < x.numel(); ++i)
            stat.observe(x[i]);
        benchmark::DoNotOptimize(stat.value());
    }
    state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_MaxAbsStat);

void
BM_LdqQuantize(benchmark::State &state)
{
    const Tensor x = gradientTensor(1 << 16);
    for (auto _ : state) {
        auto q = quant::ldqQuantize(x, state.range(0), 8);
        benchmark::DoNotOptimize(q.levels().data());
    }
    state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LdqQuantize)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_E2bqm4Way(benchmark::State &state)
{
    const Tensor x = gradientTensor(4096);
    const auto cfg = quant::E2bqmConfig::clippingLadder(8);
    for (auto _ : state) {
        auto r = quant::e2bqmQuantize(x, cfg);
        benchmark::DoNotOptimize(r.selected);
    }
    state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_E2bqm4Way);

void
BM_Gemm(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    Rng rng(3);
    Tensor a({n, n}), b({n, n});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

/**
 * Thread-scaling sweep over the shared pool: a 512^3 GEMM at 1/2/4/8
 * threads. items_per_second is the GEMM throughput, so the 4-thread /
 * 1-thread ratio in BENCH_*.json is the speedup the pool delivers.
 */
void
BM_GemmThreads(benchmark::State &state)
{
    const std::size_t n = 512;
    ThreadPool::instance().setNumThreads(
        static_cast<unsigned>(state.range(0)));
    Rng rng(3);
    Tensor a({n, n}), b({n, n});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        Tensor c = matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
    ThreadPool::instance().setNumThreads(0);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_HqtThreads(benchmark::State &state)
{
    ThreadPool::instance().setNumThreads(
        static_cast<unsigned>(state.range(0)));
    const Tensor x = gradientTensor(1 << 18);
    const auto cfg = quant::E2bqmConfig::clippingLadder(8);
    for (auto _ : state) {
        Tensor q = quant::fakeQuantizeHqt(x, 1024, cfg);
        benchmark::DoNotOptimize(q.data());
    }
    state.SetItemsProcessed(state.iterations() * x.numel());
    ThreadPool::instance().setNumThreads(0);
}
BENCHMARK(BM_HqtThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_BitSerialMultiply(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::int32_t> a(4096), b(4096);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
        b[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            arch::PeArray::dotProduct(a, 8, b, 8));
    }
    state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_BitSerialMultiply);

void
BM_NdpoUpdate(benchmark::State &state)
{
    nn::OptimizerConfig cfg;
    cfg.kind = nn::OptimizerKind::Adam;
    arch::NdpEngine ndp;
    ndp.configure(nn::NdpoConstants::fromConfig(cfg));
    std::vector<float> w(1 << 16, 0.5f), m(1 << 16, 0.0f),
        v(1 << 16, 0.0f), g(1 << 16, 0.01f);
    for (auto _ : state) {
        ndp.weightGradientStore(w, m, v, g);
        benchmark::DoNotOptimize(w.data());
    }
    state.SetItemsProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_NdpoUpdate);

void
BM_DramSequentialTransfer(benchmark::State &state)
{
    dram::DramController ctrl(dram::DramConfig::lpddr4_2133());
    Tick t = 0;
    Addr addr = 0;
    for (auto _ : state) {
        t = ctrl.transfer(t, addr, 1 << 16, false);
        addr += 1 << 16;
        benchmark::DoNotOptimize(t);
    }
    state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_DramSequentialTransfer);

void
BM_DramNdpUpdate(benchmark::State &state)
{
    dram::DramController ctrl(dram::DramConfig::lpddr4_2133());
    Tick t = 0;
    for (auto _ : state) {
        t = ctrl.ndpUpdate(t, 0, 1 << 14, 4);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_DramNdpUpdate);

} // namespace

BENCHMARK_MAIN();
