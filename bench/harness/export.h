/**
 * @file
 * Result exporters: human table, CSV, and the schema-versioned
 * BENCH_<area>.json trajectory documents (one per workload area,
 * with host/thread/seed provenance) that get refreshed per PR and
 * gated in CI. The config/export split follows hyrise's
 * benchmark_runner; the JSON schema is versioned so downstream
 * tooling can evolve without guessing.
 */

#ifndef CQ_BENCH_HARNESS_EXPORT_H
#define CQ_BENCH_HARNESS_EXPORT_H

#include <string>
#include <vector>

#include "harness/runner.h"

namespace cq::bench {

/** Bumped on any backwards-incompatible schema change. */
inline constexpr int kBenchSchemaVersion = 1;
inline constexpr const char *kBenchSchemaName = "cq-bench";

/** Run provenance recorded into every exported document. */
struct Provenance
{
    std::string host;
    unsigned threads = 0;     ///< effective pool width
    std::uint64_t seed = 42;
    int repeat = 1;
    bool quick = false;
    std::string cqThreadsEnv; ///< raw CQ_THREADS value ("" if unset)
    std::uint64_t generatedUnixMs = 0;

    /** Capture the current process environment + @p ctx. */
    static Provenance capture(const WorkloadContext &ctx);
};

/** Aligned per-workload metric table (the --format=table output). */
std::string toTable(const std::vector<RunRecord> &records);

/** Flat CSV: workload,area,metric,value,unit,timing. */
std::string toCsv(const std::vector<RunRecord> &records);

/**
 * One BENCH document as a JSON string: the records (all of one area,
 * by convention) plus provenance. Non-timing metrics land under
 * "metrics", harness timing + timing-flagged metrics under "timing" —
 * the determinism tests compare the former and ignore the latter.
 */
std::string toBenchJson(const std::vector<RunRecord> &records,
                        const Provenance &prov,
                        const std::string &area);

/**
 * Group @p records by area and write BENCH_<area>.json into
 * @p outDir. Returns the paths written; @p err describes the first
 * I/O failure (paths written so far remain on disk).
 */
std::vector<std::string>
writeBenchJsonFiles(const std::vector<RunRecord> &records,
                    const Provenance &prov, const std::string &outDir,
                    std::string &err);

} // namespace cq::bench

#endif // CQ_BENCH_HARNESS_EXPORT_H
