/**
 * @file
 * Executes registered workloads under the harness timing contract:
 * every run records wall time AND process-CPU time (obs/cpu_time.h),
 * so thread-scaling claims are honest on any host — on a 1-core
 * container a 4-thread sweep shows ~1x wall speedup but the CPU-time
 * column still proves where the cycles went. Results are mirrored
 * into the src/obs metrics registry (`bench.<workload>.<metric>`
 * gauges) so one Prometheus/JSON snapshot carries bench numbers next
 * to the runtime counters.
 */

#ifndef CQ_BENCH_HARNESS_RUNNER_H
#define CQ_BENCH_HARNESS_RUNNER_H

#include <string>
#include <vector>

#include "harness/workload.h"

namespace cq::bench {

/** Harness-measured timing of one workload (across ctx.repeat runs). */
struct RunTiming
{
    double wallMs = 0.0;       ///< last repeat
    double wallMsMin = 0.0;    ///< best of repeats
    double wallMsMean = 0.0;
    double processCpuMs = 0.0; ///< all threads, last repeat
    double mainThreadCpuMs = 0.0;
    double cpuUtilization = 0.0; ///< processCpu / wall (busy cores)
    int repeats = 1;
};

/** One workload's metadata, metrics and timing after execution. */
struct RunRecord
{
    std::string name;
    std::string area;
    std::string description;
    std::string paperRef;
    WorkloadResult result;
    RunTiming timing;
};

/**
 * Run @p selected workloads (in registration order) under @p ctx.
 * Applies ctx.threads to the shared pool for the duration (restoring
 * the default afterwards) and emits a short progress line per
 * workload to stderr.
 */
std::vector<RunRecord>
runWorkloads(const std::vector<const Workload *> &selected,
             const WorkloadContext &ctx);

/**
 * Select workloads: exact names win; otherwise any registered name
 * containing one of the comma-separated @p filter substrings (empty
 * filter = everything). Unknown exact names report via @p err.
 */
std::vector<const Workload *>
selectWorkloads(const std::vector<std::string> &exactNames,
                const std::string &filter, std::string &err);

} // namespace cq::bench

#endif // CQ_BENCH_HARNESS_RUNNER_H
