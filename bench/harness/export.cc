#include "harness/export.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <unistd.h>

#include "common/fileutil.h"
#include "common/threadpool.h"
#include "obs/jsonw.h"

namespace cq::bench {

Provenance
Provenance::capture(const WorkloadContext &ctx)
{
    Provenance p;
    char host[256] = {0};
    if (::gethostname(host, sizeof host - 1) == 0)
        p.host = host;
    p.threads = ctx.threads > 0
                    ? ctx.threads
                    : ThreadPool::instance().numThreads();
    p.seed = ctx.seed;
    p.repeat = ctx.repeat;
    p.quick = ctx.quick;
    const char *env = std::getenv("CQ_THREADS");
    p.cqThreadsEnv = env != nullptr ? env : "";
    p.generatedUnixMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return p;
}

std::string
toTable(const std::vector<RunRecord> &records)
{
    std::string out;
    char line[256];
    for (const auto &r : records) {
        std::snprintf(line, sizeof line, "%s  [%s]\n", r.name.c_str(),
                      r.area.c_str());
        out += line;
        std::snprintf(line, sizeof line, "  %s\n",
                      r.description.c_str());
        out += line;
        for (const auto &m : r.result.metrics) {
            std::snprintf(line, sizeof line, "  %-44s %16.6g %-4s%s\n",
                          m.name.c_str(), m.value, m.unit.c_str(),
                          m.timing ? " (timing)" : "");
            out += line;
        }
        std::snprintf(line, sizeof line,
                      "  %-44s %16.3f ms   (cpu %.3f ms, %.2f busy "
                      "cores)\n",
                      "harness.wall", r.timing.wallMs,
                      r.timing.processCpuMs, r.timing.cpuUtilization);
        out += line;
        if (!r.result.notes.empty()) {
            out += "  note: " + r.result.notes + "\n";
        }
        out += "\n";
    }
    return out;
}

std::string
toCsv(const std::vector<RunRecord> &records)
{
    std::string out = "workload,area,metric,value,unit,timing\n";
    char line[256];
    for (const auto &r : records) {
        for (const auto &m : r.result.metrics) {
            std::snprintf(line, sizeof line, "%s,%s,%s,%.17g,%s,%d\n",
                          r.name.c_str(), r.area.c_str(),
                          m.name.c_str(), m.value, m.unit.c_str(),
                          m.timing ? 1 : 0);
            out += line;
        }
        std::snprintf(line, sizeof line,
                      "%s,%s,harness.wall_ms,%.17g,ms,1\n",
                      r.name.c_str(), r.area.c_str(), r.timing.wallMs);
        out += line;
        std::snprintf(line, sizeof line,
                      "%s,%s,harness.cpu_ms,%.17g,ms,1\n",
                      r.name.c_str(), r.area.c_str(),
                      r.timing.processCpuMs);
        out += line;
    }
    return out;
}

namespace {

void
appendProvenance(std::string &out, const Provenance &prov)
{
    out += "  \"provenance\": {\n    \"host\": ";
    obs::appendJsonString(out, prov.host);
    out += ",\n    \"threads\": ";
    obs::appendJsonNumber(out, prov.threads);
    out += ",\n    \"cq_threads_env\": ";
    if (prov.cqThreadsEnv.empty())
        out += "null";
    else
        obs::appendJsonString(out, prov.cqThreadsEnv);
    out += ",\n    \"seed\": ";
    obs::appendJsonNumber(out, static_cast<double>(prov.seed));
    out += ",\n    \"repeat\": ";
    obs::appendJsonNumber(out, prov.repeat);
    out += ",\n    \"quick\": ";
    out += prov.quick ? "true" : "false";
    out += ",\n    \"generated_unix_ms\": ";
    obs::appendJsonNumber(out,
                          static_cast<double>(prov.generatedUnixMs));
    out += "\n  }";
}

void
appendMetric(std::string &out, const MetricValue &m, bool first)
{
    if (!first)
        out += ",\n";
    out += "        ";
    obs::appendJsonString(out, m.name);
    out += ": {\"value\": ";
    obs::appendJsonNumber(out, m.value);
    if (!m.unit.empty()) {
        out += ", \"unit\": ";
        obs::appendJsonString(out, m.unit);
    }
    out += "}";
}

} // namespace

std::string
toBenchJson(const std::vector<RunRecord> &records,
            const Provenance &prov, const std::string &area)
{
    std::string out = "{\n  \"schema\": ";
    obs::appendJsonString(out, kBenchSchemaName);
    out += ",\n  \"schema_version\": ";
    obs::appendJsonNumber(out, kBenchSchemaVersion);
    out += ",\n  \"area\": ";
    obs::appendJsonString(out, area);
    out += ",\n";
    appendProvenance(out, prov);
    out += ",\n  \"workloads\": [\n";
    bool firstRec = true;
    for (const auto &r : records) {
        if (r.area != area)
            continue;
        if (!firstRec)
            out += ",\n";
        firstRec = false;
        out += "    {\n      \"name\": ";
        obs::appendJsonString(out, r.name);
        out += ",\n      \"description\": ";
        obs::appendJsonString(out, r.description);
        out += ",\n      \"paper_ref\": ";
        obs::appendJsonString(out, r.paperRef);
        if (!r.result.notes.empty()) {
            out += ",\n      \"notes\": ";
            obs::appendJsonString(out, r.result.notes);
        }
        out += ",\n      \"metrics\": {\n";
        bool first = true;
        for (const auto &m : r.result.metrics) {
            if (m.timing)
                continue;
            appendMetric(out, m, first);
            first = false;
        }
        out += "\n      },\n      \"timing\": {\n";
        out += "        \"wall_ms\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.wallMs);
        out += ", \"unit\": \"ms\"},\n";
        out += "        \"wall_ms_min\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.wallMsMin);
        out += ", \"unit\": \"ms\"},\n";
        out += "        \"wall_ms_mean\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.wallMsMean);
        out += ", \"unit\": \"ms\"},\n";
        out += "        \"cpu_ms\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.processCpuMs);
        out += ", \"unit\": \"ms\"},\n";
        out += "        \"cpu_main_thread_ms\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.mainThreadCpuMs);
        out += ", \"unit\": \"ms\"},\n";
        out += "        \"cpu_utilization\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.cpuUtilization);
        out += ", \"unit\": \"cores\"},\n";
        out += "        \"repeats\": {\"value\": ";
        obs::appendJsonNumber(out, r.timing.repeats);
        out += "}";
        for (const auto &m : r.result.metrics) {
            if (!m.timing)
                continue;
            out += ",\n";
            appendMetric(out, m, true);
        }
        out += "\n      }\n    }";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::vector<std::string>
writeBenchJsonFiles(const std::vector<RunRecord> &records,
                    const Provenance &prov, const std::string &outDir,
                    std::string &err)
{
    // Areas in first-seen order.
    std::vector<std::string> areas;
    for (const auto &r : records) {
        bool seen = false;
        for (const auto &a : areas)
            seen = seen || a == r.area;
        if (!seen)
            areas.push_back(r.area);
    }

    if (!outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(outDir, ec);
        if (ec) {
            err = "cannot create '" + outDir + "': " + ec.message();
            return {};
        }
    }

    std::vector<std::string> written;
    for (const auto &area : areas) {
        const std::string path =
            (outDir.empty() ? std::string(".") : outDir) + "/BENCH_" +
            area + ".json";
        const std::string doc = toBenchJson(records, prov, area);
        std::FILE *f = io::fopenFp("bench.json.open", path, "w");
        if (f == nullptr) {
            err = "cannot write '" + path + "'";
            return written;
        }
        const bool ok = io::fwriteFp("bench.json.write", doc.data(),
                                     doc.size(), f) == doc.size();
        // fclose flushes the stdio buffer — a failure here means the
        // trajectory point never reached disk and must be reported.
        const bool closed = io::fcloseFp("bench.json.close", f) == 0;
        if (!ok || !closed) {
            std::remove(path.c_str());
            err = "short write on '" + path + "'";
            return written;
        }
        written.push_back(path);
    }
    return written;
}

} // namespace cq::bench
