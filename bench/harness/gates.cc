#include "harness/gates.h"

#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace cq::bench {

GateFile
loadGates(const std::string &path)
{
    GateFile out;
    const auto parsed = json::parseFile(path);
    if (!parsed.ok) {
        out.error = "gates file " + path + ": " + parsed.error;
        return out;
    }
    const json::Value &doc = parsed.value;
    if (!doc.isObject()) {
        out.error = "gates file " + path + ": top level must be an "
                                           "object";
        return out;
    }
    out.schemaVersion =
        static_cast<int>(doc.numberOr("schema_version", 0));
    if (out.schemaVersion != 1) {
        out.error = "gates file " + path +
                    ": unsupported schema_version";
        return out;
    }
    const json::Value *gates = doc.find("gates");
    if (gates == nullptr || !gates->isArray()) {
        out.error = "gates file " + path + ": missing 'gates' array";
        return out;
    }
    for (const auto &g : gates->asArray()) {
        if (!g.isObject()) {
            out.error = "gates file " + path +
                        ": every gate must be an object";
            return out;
        }
        Gate gate;
        gate.id = g.stringOr("id", "");
        gate.workload = g.stringOr("workload", "");
        gate.metric = g.stringOr("metric", "");
        gate.note = g.stringOr("note", "");
        const json::Value *mn = g.find("min");
        const json::Value *mx = g.find("max");
        if (mn != nullptr && mn->isNumber()) {
            gate.hasMin = true;
            gate.min = mn->asNumber();
        }
        if (mx != nullptr && mx->isNumber()) {
            gate.hasMax = true;
            gate.max = mx->asNumber();
        }
        if (gate.id.empty() || gate.workload.empty() ||
            gate.metric.empty() || (!gate.hasMin && !gate.hasMax)) {
            out.error = "gates file " + path + ": gate '" + gate.id +
                        "' needs id, workload, metric and min/max";
            return out;
        }
        for (const auto &prev : out.gates) {
            if (prev.id == gate.id) {
                out.error = "gates file " + path +
                            ": duplicate gate id '" + gate.id + "'";
                return out;
            }
        }
        out.gates.push_back(std::move(gate));
    }
    if (out.gates.empty()) {
        out.error = "gates file " + path + ": no gates defined";
        return out;
    }
    out.ok = true;
    return out;
}

std::vector<GateOutcome>
evaluateGates(const std::vector<Gate> &gates,
              const std::vector<RunRecord> &records)
{
    std::vector<GateOutcome> out;
    out.reserve(gates.size());
    for (const auto &g : gates) {
        GateOutcome o;
        o.gate = g;
        const RunRecord *rec = nullptr;
        for (const auto &r : records)
            if (r.name == g.workload)
                rec = &r;
        if (rec == nullptr) {
            o.detail = "workload did not run";
            out.push_back(std::move(o));
            continue;
        }
        const MetricValue *m = rec->result.find(g.metric);
        if (m == nullptr) {
            o.detail = "metric not reported";
            out.push_back(std::move(o));
            continue;
        }
        o.found = true;
        o.value = m->value;
        if (!std::isfinite(o.value)) {
            o.detail = "non-finite value";
            out.push_back(std::move(o));
            continue;
        }
        const bool minOk = !g.hasMin || o.value >= g.min;
        const bool maxOk = !g.hasMax || o.value <= g.max;
        o.pass = minOk && maxOk;
        char buf[128];
        if (!minOk)
            std::snprintf(buf, sizeof buf, "%.4g < min %.4g", o.value,
                          g.min);
        else if (!maxOk)
            std::snprintf(buf, sizeof buf, "%.4g > max %.4g", o.value,
                          g.max);
        else
            std::snprintf(buf, sizeof buf, "within bounds");
        o.detail = buf;
        out.push_back(std::move(o));
    }
    return out;
}

std::string
gateReport(const std::vector<GateOutcome> &outcomes)
{
    std::string out;
    char line[320];
    std::snprintf(line, sizeof line, "%-9s %-42s %12s %18s  %s\n",
                  "gate", "workload.metric", "value", "bound",
                  "verdict");
    out += line;
    out += std::string(96, '-') + "\n";
    std::size_t failures = 0;
    for (const auto &o : outcomes) {
        char bound[64];
        if (o.gate.hasMin && o.gate.hasMax)
            std::snprintf(bound, sizeof bound, "[%.4g, %.4g]",
                          o.gate.min, o.gate.max);
        else if (o.gate.hasMin)
            std::snprintf(bound, sizeof bound, ">= %.4g", o.gate.min);
        else
            std::snprintf(bound, sizeof bound, "<= %.4g", o.gate.max);
        char value[32];
        if (o.found)
            std::snprintf(value, sizeof value, "%.6g", o.value);
        else
            std::snprintf(value, sizeof value, "-");
        std::snprintf(line, sizeof line,
                      "%-9s %-42s %12s %18s  %s (%s)\n",
                      o.gate.id.c_str(),
                      (o.gate.workload + "." + o.gate.metric).c_str(),
                      value, bound, o.pass ? "PASS" : "FAIL",
                      o.detail.c_str());
        out += line;
        if (!o.pass)
            ++failures;
    }
    out += std::string(96, '-') + "\n";
    std::snprintf(line, sizeof line, "%zu/%zu gates passed\n",
                  outcomes.size() - failures, outcomes.size());
    out += line;
    return out;
}

std::vector<std::string>
gatedWorkloadNames(const std::vector<Gate> &gates)
{
    std::vector<std::string> names;
    for (const auto &g : gates) {
        bool seen = false;
        for (const auto &n : names)
            seen = seen || n == g.workload;
        if (!seen)
            names.push_back(g.workload);
    }
    return names;
}

} // namespace cq::bench
