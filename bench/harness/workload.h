/**
 * @file
 * Core types of the unified benchmark harness: a workload is a named,
 * areaed function from a run context to a set of named metrics. The
 * 13 former one-off bench mains are registered as workloads (see
 * bench/workloads/), the cq_bench driver runs them, and the exporters
 * turn the results into tables, CSV, or the per-area BENCH_*.json
 * trajectory documents that CI gates against (bench/gates.json).
 */

#ifndef CQ_BENCH_HARNESS_WORKLOAD_H
#define CQ_BENCH_HARNESS_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cq::bench {

/** Knobs every workload receives. */
struct WorkloadContext
{
    /** Base seed for any randomness the workload uses. Two runs with
     *  the same seed must produce identical non-timing metrics (the
     *  determinism contract, enforced by tests/test_bench_harness). */
    std::uint64_t seed = 42;
    /** Repeat count for the timing loop around the workload; the
     *  harness keeps min/mean wall time across repeats. */
    int repeat = 1;
    /** Thread-pool width; 0 keeps the CQ_THREADS default. */
    unsigned threads = 0;
    /** Reduced problem sizes / sweep points for CI. Metrics that
     *  gates reference must stay within their bounds in both modes
     *  (bounds in bench/gates.json are calibrated for that). */
    bool quick = false;
};

/**
 * One named scalar result. `timing` marks values measured on wall or
 * CPU clocks (throughput, latency): they vary run to run and are
 * excluded from the determinism comparison; everything else must be
 * bit-reproducible for a fixed seed.
 */
struct MetricValue
{
    std::string name;
    double value = 0.0;
    std::string unit; ///< "ms", "x", "%", "pJ", ... (display only)
    bool timing = false;
};

/** What a workload hands back: ordered metrics plus a one-line note
 *  tying the numbers to the paper claim they reproduce. */
struct WorkloadResult
{
    std::vector<MetricValue> metrics;
    std::string notes;

    void set(const std::string &name, double value,
             const std::string &unit = "")
    {
        metrics.push_back({name, value, unit, false});
    }
    void setTiming(const std::string &name, double value,
                   const std::string &unit = "ms")
    {
        metrics.push_back({name, value, unit, true});
    }

    const MetricValue *find(const std::string &name) const
    {
        for (const auto &m : metrics)
            if (m.name == name)
                return &m;
        return nullptr;
    }
};

using WorkloadFn =
    std::function<WorkloadResult(const WorkloadContext &)>;

/** A registered workload. `area` buckets results into one
 *  BENCH_<area>.json document (perf / energy / accuracy /
 *  resilience / kernels). */
struct Workload
{
    std::string name;
    std::string area;
    std::string description;
    std::string paperRef;
    WorkloadFn run;
};

/** Process-wide workload registry (explicit registration: the driver
 *  calls workloads::registerAll() once at startup). */
class Registry
{
  public:
    static Registry &instance();

    /** Registers @p w; duplicate names abort (programming error). */
    void add(Workload w);

    const std::vector<Workload> &all() const { return workloads_; }
    const Workload *find(const std::string &name) const;

    /** Test support: drop every registration. */
    void clear() { workloads_.clear(); }

  private:
    std::vector<Workload> workloads_;
};

namespace workloads {
/** Register the full workload set (everything under
 *  bench/workloads/). Safe to call more than once per process. */
void registerAll();
} // namespace workloads

} // namespace cq::bench

#endif // CQ_BENCH_HARNESS_WORKLOAD_H
