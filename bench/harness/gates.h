/**
 * @file
 * Named CI performance gates, modeled on the netc harness: each gate
 * has a stable id (PERF-xx throughput/latency ratios, ACC-xx accuracy
 * floors, ENER-xx energy-split sanity), points at one workload metric
 * and carries a min and/or max bound. Gates are data, not code —
 * loaded from bench/gates.json — so tightening a bound is a reviewed
 * one-line diff. `cq_bench --ci-check` evaluates them and exits
 * nonzero on any regression, printing a per-gate pass/fail table.
 */

#ifndef CQ_BENCH_HARNESS_GATES_H
#define CQ_BENCH_HARNESS_GATES_H

#include <string>
#include <vector>

#include "harness/runner.h"

namespace cq::bench {

struct Gate
{
    std::string id;       ///< "PERF-01", "ACC-02", "ENER-01", ...
    std::string workload; ///< registered workload name
    std::string metric;   ///< metric name within that workload
    std::string note;     ///< human rationale (paper value, margin)
    bool hasMin = false;
    bool hasMax = false;
    double min = 0.0;
    double max = 0.0;
};

struct GateFile
{
    bool ok = false;
    std::string error; ///< parse/validation failure when !ok
    int schemaVersion = 0;
    std::vector<Gate> gates;
};

/** Load + validate bench/gates.json (schema_version, unique ids,
 *  at least one bound per gate). */
GateFile loadGates(const std::string &path);

struct GateOutcome
{
    Gate gate;
    bool found = false; ///< workload ran and the metric exists
    double value = 0.0;
    bool pass = false;
    std::string detail; ///< one-line verdict reason
};

/** Evaluate every gate against @p records. A missing workload or
 *  metric is a FAIL (a gate silently evaluating nothing is how
 *  regressions sneak in). */
std::vector<GateOutcome>
evaluateGates(const std::vector<Gate> &gates,
              const std::vector<RunRecord> &records);

/** Render the pass/fail table (one row per gate + a summary line). */
std::string gateReport(const std::vector<GateOutcome> &outcomes);

/** The workload names gates reference, deduplicated, in gate order. */
std::vector<std::string>
gatedWorkloadNames(const std::vector<Gate> &gates);

} // namespace cq::bench

#endif // CQ_BENCH_HARNESS_GATES_H
