#include "harness/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "harness/export.h"
#include "harness/gates.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "obs/metrics.h"

namespace cq::bench {

namespace {

constexpr const char *kProg = "cq_bench";

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: cq_bench [--list] [--filter SUBSTR[,SUBSTR...]]\n"
        "                [--workload NAME]... [--repeat N] [--seed "
        "S]\n"
        "                [--threads N] [--quick] "
        "[--format table|json|csv]\n"
        "                [--out-dir DIR] [--metrics-out FILE]\n"
        "                [--ci-check] [--gates FILE]\n"
        "\n"
        "Runs registered benchmark workloads (the former 13 bench_* "
        "mains).\n"
        "Every run writes one BENCH_<area>.json per touched area "
        "into --out-dir\n"
        "(default: current directory) with host/threads/seed "
        "provenance.\n"
        "\n"
        "  --list        enumerate workloads (name, area, "
        "description)\n"
        "  --filter      substring selection over names and areas\n"
        "  --workload    exact-name selection (repeatable)\n"
        "  --repeat      timing repeats per workload (default 1)\n"
        "  --seed        base seed handed to every workload "
        "(default 42)\n"
        "  --threads     thread-pool width (default: CQ_THREADS)\n"
        "  --quick       reduced sweeps (CI); recorded in "
        "provenance\n"
        "  --format      stdout format (default table)\n"
        "  --metrics-out Prometheus snapshot of bench.* gauges\n"
        "  --ci-check    run the workloads referenced by --gates,\n"
        "                print the per-gate table, exit 1 on any "
        "FAIL\n"
        "  --gates       gate definitions (default "
        "bench/gates.json)\n");
}

struct Options
{
    bool list = false;
    bool ciCheck = false;
    bool quick = false;
    std::string filter;
    std::vector<std::string> workloads;
    std::string format = "table";
    std::string outDir = ".";
    std::string gatesPath = "bench/gates.json";
    std::string metricsOut;
    WorkloadContext ctx;
};

int
runCiCheck(const Options &opt)
{
    const GateFile gf = loadGates(opt.gatesPath);
    if (!gf.ok) {
        std::fprintf(stderr, "cq_bench: %s\n", gf.error.c_str());
        return 3;
    }

    std::string err;
    std::vector<const Workload *> selected;
    for (const auto &name : gatedWorkloadNames(gf.gates)) {
        const Workload *w = Registry::instance().find(name);
        if (w == nullptr) {
            std::fprintf(stderr,
                         "cq_bench: gates reference unknown workload "
                         "'%s'\n",
                         name.c_str());
            return 3;
        }
        selected.push_back(w);
    }

    WorkloadContext ctx = opt.ctx;
    ctx.quick = true; // CI bounds are calibrated to hold either way
    const auto records = runWorkloads(selected, ctx);

    const auto prov = Provenance::capture(ctx);
    const auto paths =
        writeBenchJsonFiles(records, prov, opt.outDir, err);
    if (!err.empty()) {
        std::fprintf(stderr, "cq_bench: %s\n", err.c_str());
        return 1;
    }
    for (const auto &p : paths)
        std::fprintf(stderr, "[cq_bench] wrote %s\n", p.c_str());

    const auto outcomes = evaluateGates(gf.gates, records);
    std::fputs(gateReport(outcomes).c_str(), stdout);
    for (const auto &o : outcomes)
        if (!o.pass)
            return 1;
    return 0;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    workloads::registerAll();

    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--list")
            opt.list = true;
        else if (arg == "--filter")
            opt.filter = next();
        else if (arg == "--workload")
            opt.workloads.push_back(next());
        else if (arg == "--repeat")
            opt.ctx.repeat = static_cast<int>(
                args::parseU64(kProg, arg, next(), 1, 1000));
        else if (arg == "--seed")
            opt.ctx.seed =
                args::parseU64(kProg, arg, next(), 0, UINT64_MAX);
        else if (arg == "--threads")
            opt.ctx.threads = static_cast<unsigned>(
                args::parseU64(kProg, arg, next(), 1, 256));
        else if (arg == "--quick")
            opt.ctx.quick = true;
        else if (arg == "--format") {
            opt.format = next();
            if (opt.format != "table" && opt.format != "json" &&
                opt.format != "csv")
                args::failValue(kProg, arg,
                                "expects table, json or csv",
                                opt.format);
        } else if (arg == "--out-dir")
            opt.outDir = next();
        else if (arg == "--gates")
            opt.gatesPath = next();
        else if (arg == "--metrics-out")
            opt.metricsOut = next();
        else if (arg == "--ci-check")
            opt.ciCheck = true;
        else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "cq_bench: unknown flag '%s' (see --help)\n",
                         arg.c_str());
            return 2;
        }
    }

    if (opt.list) {
        for (const auto &w : Registry::instance().all())
            std::printf("%-28s %-12s %s\n", w.name.c_str(),
                        w.area.c_str(), w.description.c_str());
        return 0;
    }

    if (opt.ciCheck)
        return runCiCheck(opt);

    std::string err;
    const auto selected =
        selectWorkloads(opt.workloads, opt.filter, err);
    if (selected.empty()) {
        std::fprintf(stderr, "cq_bench: %s\n",
                     err.empty() ? "no workloads registered"
                                 : err.c_str());
        return 2;
    }

    const auto records = runWorkloads(selected, opt.ctx);
    const auto prov = Provenance::capture(opt.ctx);

    if (opt.format == "table")
        std::fputs(toTable(records).c_str(), stdout);
    else if (opt.format == "csv")
        std::fputs(toCsv(records).c_str(), stdout);
    else {
        // --format=json prints each touched area's document.
        std::vector<std::string> areas;
        for (const auto &r : records) {
            bool seen = false;
            for (const auto &a : areas)
                seen = seen || a == r.area;
            if (!seen)
                areas.push_back(r.area);
        }
        for (const auto &a : areas)
            std::fputs(toBenchJson(records, prov, a).c_str(), stdout);
    }

    const auto paths =
        writeBenchJsonFiles(records, prov, opt.outDir, err);
    if (!err.empty()) {
        std::fprintf(stderr, "cq_bench: %s\n", err.c_str());
        return 1;
    }
    for (const auto &p : paths)
        std::fprintf(stderr, "[cq_bench] wrote %s\n", p.c_str());

    if (!opt.metricsOut.empty()) {
        obs::MetricRegistry::instance().writeProm(opt.metricsOut);
        std::fprintf(stderr, "[cq_bench] metrics -> %s\n",
                     opt.metricsOut.c_str());
    }
    return 0;
}

} // namespace cq::bench
