/**
 * @file
 * The cq_bench driver: flag parsing, workload selection, execution,
 * export and CI gate checking. Split from tools/cq_bench.cc so the
 * whole surface is linkable into tests.
 */

#ifndef CQ_BENCH_HARNESS_HARNESS_H
#define CQ_BENCH_HARNESS_HARNESS_H

namespace cq::bench {

/** Exit codes: 0 ok, 1 gate regression / run failure, 2 bad usage,
 *  3 malformed gates file. */
int benchMain(int argc, char **argv);

} // namespace cq::bench

#endif // CQ_BENCH_HARNESS_HARNESS_H
