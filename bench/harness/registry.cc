#include "harness/workload.h"

#include "common/logging.h"

namespace cq::bench {

Registry &
Registry::instance()
{
    static Registry *r = new Registry; // leaky singleton, like the
    return *r;                         // obs registries
}

void
Registry::add(Workload w)
{
    CQ_ASSERT_MSG(!w.name.empty() && !w.area.empty() && w.run,
                  "workload needs a name, an area and a function");
    CQ_ASSERT_MSG(find(w.name) == nullptr,
                  "duplicate workload registration");
    workloads_.push_back(std::move(w));
}

const Workload *
Registry::find(const std::string &name) const
{
    for (const auto &w : workloads_)
        if (w.name == name)
            return &w;
    return nullptr;
}

} // namespace cq::bench
