#include "harness/runner.h"

#include <algorithm>
#include <cstdio>

#include "common/threadpool.h"
#include "obs/cpu_time.h"
#include "obs/metrics.h"

namespace cq::bench {

namespace {

void
mirrorToObsRegistry(const RunRecord &rec)
{
    auto &reg = obs::MetricRegistry::instance();
    const std::string prefix = "bench." + rec.name + ".";
    for (const auto &m : rec.result.metrics)
        reg.gauge(prefix + m.name).set(m.value);
    reg.gauge(prefix + "wall_ms").set(rec.timing.wallMs);
    reg.gauge(prefix + "cpu_ms").set(rec.timing.processCpuMs);
}

} // namespace

std::vector<RunRecord>
runWorkloads(const std::vector<const Workload *> &selected,
             const WorkloadContext &ctx)
{
    auto &pool = ThreadPool::instance();
    if (ctx.threads > 0)
        pool.setNumThreads(ctx.threads);

    std::vector<RunRecord> out;
    out.reserve(selected.size());
    for (const Workload *w : selected) {
        std::fprintf(stderr, "[cq_bench] %s (%s)%s...\n",
                     w->name.c_str(), w->area.c_str(),
                     ctx.quick ? " [quick]" : "");
        RunRecord rec;
        rec.name = w->name;
        rec.area = w->area;
        rec.description = w->description;
        rec.paperRef = w->paperRef;

        const int repeats = ctx.repeat > 0 ? ctx.repeat : 1;
        double wallSum = 0.0, wallMin = 0.0;
        for (int r = 0; r < repeats; ++r) {
            const auto t0 = obs::sampleClocks();
            rec.result = w->run(ctx);
            const auto dt = obs::elapsedSince(t0);
            wallSum += dt.wallMs;
            wallMin = r == 0 ? dt.wallMs
                             : std::min(wallMin, dt.wallMs);
            rec.timing.wallMs = dt.wallMs;
            rec.timing.processCpuMs = dt.processCpuMs;
            rec.timing.mainThreadCpuMs = dt.threadCpuMs;
            rec.timing.cpuUtilization = dt.cpuUtilization();
        }
        rec.timing.repeats = repeats;
        rec.timing.wallMsMin = wallMin;
        rec.timing.wallMsMean = wallSum / repeats;

        mirrorToObsRegistry(rec);
        out.push_back(std::move(rec));
    }

    if (ctx.threads > 0)
        pool.setNumThreads(0); // back to the CQ_THREADS default
    return out;
}

std::vector<const Workload *>
selectWorkloads(const std::vector<std::string> &exactNames,
                const std::string &filter, std::string &err)
{
    const auto &all = Registry::instance().all();
    std::vector<const Workload *> out;

    if (!exactNames.empty()) {
        for (const auto &name : exactNames) {
            const Workload *w = Registry::instance().find(name);
            if (w == nullptr) {
                err = "unknown workload '" + name +
                      "' (see --list)";
                return {};
            }
            out.push_back(w);
        }
        return out;
    }

    if (filter.empty()) {
        for (const auto &w : all)
            out.push_back(&w);
        return out;
    }

    // Comma-separated substrings, OR-combined.
    std::vector<std::string> terms;
    std::size_t start = 0;
    while (start <= filter.size()) {
        const std::size_t comma = filter.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? filter.size() : comma;
        if (end > start)
            terms.push_back(filter.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    for (const auto &w : all) {
        for (const auto &t : terms) {
            if (w.name.find(t) != std::string::npos ||
                w.area.find(t) != std::string::npos) {
                out.push_back(&w);
                break;
            }
        }
    }
    if (out.empty())
        err = "filter '" + filter + "' matches no workload";
    return out;
}

} // namespace cq::bench
