/**
 * @file
 * Fig. 2: the data distributions of gradients vary by orders of
 * magnitude across layers and across training iterations -- the
 * motivation for *dynamic* statistic-based quantization.
 *
 * We train the CNN stand-in while recording max|gradient| per layer
 * per step (the statistic the SQU computes) and report (a) the
 * per-layer spread at a fixed step and (b) the per-step spread for a
 * fixed layer, mirroring Fig. 2 (a) and (b).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"

using namespace cq;

int
main()
{
    bench::banner("Fig. 2 -- gradient max|x| across layers and "
                  "iterations",
                  "Cambricon-Q, ISCA'21, Fig. 2");

    const std::size_t classes = 4;
    nn::PatternImageDataset data(classes, 1, 12, 12, 0.35, 4321);
    Rng rng(3);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, 8, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu1",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2, 2));
    net.add(std::make_unique<nn::Conv2d>(
        "conv2", Conv2dGeometry{8, 16, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu2",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", 16, classes, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::fp32();
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    cfg.recordGradientStats = true;
    nn::QuantTrainer trainer(net, cfg);

    const int steps = 200;
    for (int step = 0; step < steps; ++step) {
        const auto batch = data.sample(32);
        trainer.stepClassification(batch.inputs, batch.labels);
    }

    // Organize records: layer -> step -> maxAbs.
    std::map<std::size_t, std::map<std::size_t, double>> by_layer;
    for (const auto &rec : trainer.gradientRecords())
        by_layer[rec.layerIndex][rec.step] = rec.maxAbs;

    std::printf("(a) per-layer max|grad| at selected steps\n");
    std::printf("%-8s", "layer");
    for (std::size_t s : {std::size_t(1), std::size_t(50),
                          std::size_t(200)})
        std::printf("  step %-4zu", s);
    std::printf("\n");
    for (const auto &[layer, series] : by_layer) {
        std::printf("%-8zu", layer);
        for (std::size_t s : {std::size_t(1), std::size_t(50),
                              std::size_t(200)}) {
            const auto it = series.find(s);
            std::printf("  %.3e", it == series.end() ? 0.0
                                                     : it->second);
        }
        std::printf("\n");
    }

    // Spread across layers at the final step.
    double layer_min = 1e300, layer_max = 0.0;
    for (const auto &[layer, series] : by_layer) {
        const double v = series.rbegin()->second;
        if (v > 0.0) {
            layer_min = std::min(layer_min, v);
            layer_max = std::max(layer_max, v);
        }
    }

    // Spread across steps for the first conv layer.
    double step_min = 1e300, step_max = 0.0;
    for (const auto &[step, v] : by_layer.begin()->second) {
        if (v > 0.0) {
            step_min = std::min(step_min, v);
            step_max = std::max(step_max, v);
        }
    }

    bench::rule();
    std::printf("(b) spread of max|grad|\n");
    std::printf("  across layers (final step):   %.3e .. %.3e "
                "(%.1fx, paper: ~2 orders of magnitude)\n",
                layer_min, layer_max, layer_max / layer_min);
    std::printf("  across iterations (layer 0):  %.3e .. %.3e "
                "(%.1fx, paper: ~3 orders of magnitude)\n",
                step_min, step_max, step_max / step_min);
    std::printf("\nconclusion: no static quantization range fits all "
                "layers/steps -- on-the-fly statistics are required\n"
                "(a [-3e-4, 3e-4] static range would clip or waste "
                "most layers, per the paper's argument).\n");
    return 0;
}
