/**
 * @file
 * Table VIII: training accuracy of FP32 vs Zhu-2019 vs Zhang-2020,
 * each with and without HQT, plus the extended Table III coverage
 * (Wang'18 FP8, Yang'20 INT8).
 *
 * Substitution (see DESIGN.md): ImageNet / WMT17 / PennTreeBank are
 * replaced by procedurally generated tasks small enough to train on
 * a CPU in seconds. The quantity under test is the paper's: the
 * accuracy *delta* between quantization policies on identical
 * seeds/data. Quick mode trains two CNN stand-ins on the main three
 * policies only.
 */

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "harness/workload.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

/** CNN stand-in parameterized by width/depth. */
nn::Network
makeCnn(std::uint64_t seed, std::size_t c1, std::size_t c2, int depth,
        std::size_t classes)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, c1, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu1",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2, 2));
    for (int d = 0; d < depth; ++d) {
        const std::string tag = std::to_string(d + 2);
        net.add(std::make_unique<nn::Conv2d>(
            "conv" + tag,
            Conv2dGeometry{d == 0 ? c1 : c2, c2, 3, 3, 1, 1}, rng));
        net.add(std::make_unique<nn::Activation>("relu" + tag,
                                                 nn::ActKind::ReLU));
    }
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", c2, classes, rng));
    return net;
}

double
trainCnn(const quant::AlgorithmConfig &algo, std::size_t c1,
         std::size_t c2, int depth, int steps)
{
    const std::size_t classes = 4;
    nn::PatternImageDataset data(classes, 1, 12, 12, 1.2, 1234);
    nn::Network net = makeCnn(11, c1, c2, depth, classes);
    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    nn::QuantTrainer trainer(net, cfg);
    for (int step = 0; step < steps; ++step) {
        const auto batch = data.sample(32);
        trainer.stepClassification(batch.inputs, batch.labels);
    }
    const auto eval = data.evalSet(512);
    return 100.0 * trainer.evalAccuracy(eval.inputs, eval.labels);
}

double
trainTransformer(const quant::AlgorithmConfig &algo, int steps)
{
    const std::size_t classes = 4, vocab = 12, seq = 12, dim = 32;
    const std::size_t batch = 16;
    nn::SequenceRuleDataset data(classes, vocab, seq, 77);
    Rng rng(13);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("embed", vocab, dim, rng));
    net.add(std::make_unique<nn::PositionalEncoding>("pos", seq, dim));
    net.add(std::make_unique<nn::TransformerBlock>(
        "block", batch, seq, dim, 4, 2 * dim, rng));
    net.add(std::make_unique<nn::Linear>("head", dim, classes, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 1e-3;
    nn::QuantTrainer trainer(net, cfg);

    const auto expand = [&](const std::vector<int> &labels) {
        std::vector<int> out;
        out.reserve(labels.size() * seq);
        for (int l : labels)
            for (std::size_t t = 0; t < seq; ++t)
                out.push_back(l);
        return out;
    };

    for (int step = 0; step < steps; ++step) {
        const auto b = data.sample(batch);
        trainer.stepClassification(b.inputs, expand(b.labels));
    }
    double acc = 0.0;
    const int evalRounds = 8;
    for (int r = 0; r < evalRounds; ++r) {
        const auto b = data.sample(batch);
        acc += trainer.evalAccuracy(b.inputs, expand(b.labels));
    }
    return 100.0 * acc / evalRounds;
}

double
trainLstm(const quant::AlgorithmConfig &algo, int steps)
{
    const std::size_t vocab = 16, hidden = 48, seq = 16, batch = 16;
    nn::MarkovTextDataset data(vocab, 55);
    Rng rng(17);
    nn::Network net;
    net.add(std::make_unique<nn::Lstm>("lstm", vocab, hidden, rng));
    net.add(std::make_unique<nn::MergeLeading>("merge"));
    net.add(std::make_unique<nn::Linear>("proj", hidden, vocab, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    nn::QuantTrainer trainer(net, cfg);

    for (int step = 0; step < steps; ++step) {
        const auto b = data.sample(seq, batch);
        trainer.stepLanguageModel(b.inputs, b.targets, vocab);
    }
    const auto eval = data.evalSet(seq, 64);
    return trainer.evalPerplexity(eval.inputs, eval.targets, vocab);
}

WorkloadResult
run(const WorkloadContext &ctx)
{
    struct Algo
    {
        const char *tag;
        quant::AlgorithmConfig cfg;
    };
    std::vector<Algo> algos = {
        {"fp32", quant::AlgorithmConfig::fp32()},
        {"zhu_hqt", quant::AlgorithmConfig::zhu2019Hqt(256)},
        {"zhang_hqt", quant::AlgorithmConfig::zhang2020Hqt(256)},
    };
    if (!ctx.quick) {
        algos.push_back({"zhu", quant::AlgorithmConfig::zhu2019()});
        algos.push_back(
            {"zhang", quant::AlgorithmConfig::zhang2020()});
        algos.push_back({"wang2018",
                         quant::AlgorithmConfig::wang2018()});
        algos.push_back({"yang2020",
                         quant::AlgorithmConfig::yang2020()});
    }

    struct CnnSpec
    {
        const char *name;
        std::size_t c1, c2;
        int depth;
    };
    std::vector<CnnSpec> cnns = {
        {"alexnet", 8, 16, 1},
        {"resnet18", 8, 16, 3},
    };
    if (!ctx.quick) {
        cnns.push_back({"googlenet", 12, 24, 2});
        cnns.push_back({"squeezenet", 6, 12, 2});
    }

    const int steps = ctx.quick ? 100 : 150;
    WorkloadResult out;
    double worstHqtDelta = 0.0; // worst accuracy drop of +HQT vs FP32
    for (const auto &c : cnns) {
        double fp32Acc = 0.0;
        for (const auto &a : algos) {
            const double acc =
                trainCnn(a.cfg, c.c1, c.c2, c.depth, steps);
            out.set(std::string("acc_") + c.name + "_" + a.tag, acc,
                    "%");
            if (std::string(a.tag) == "fp32")
                fp32Acc = acc;
            else if (std::string(a.tag).find("_hqt") !=
                     std::string::npos)
                worstHqtDelta =
                    std::max(worstHqtDelta, fp32Acc - acc);
        }
    }
    out.set("worst_hqt_acc_drop_vs_fp32", worstHqtDelta, "%");

    if (!ctx.quick) {
        for (const auto &a : algos) {
            if (std::string(a.tag) == "wang2018" ||
                std::string(a.tag) == "yang2020")
                continue;
            out.set(std::string("acc_transformer_") + a.tag,
                    trainTransformer(a.cfg, steps), "%");
            out.set(std::string("ppl_lstm_") + a.tag,
                    trainLstm(a.cfg, steps));
        }
    }
    out.notes = "paper: Zhang within 0.4% of FP32; +HQT matches or "
                "slightly improves its base algorithm";
    return out;
}

} // namespace

void
registerTable8Accuracy()
{
    Registry::instance().add(
        {"table8_accuracy", "accuracy",
         "training-accuracy deltas across quantization policies "
         "(synthetic substitution)",
         "Cambricon-Q, ISCA'21, Table VIII + Table III", run});
}

} // namespace cq::bench::workloads
