/**
 * @file
 * Table I: per-operation energy at 45 nm. The energy model's
 * constants are compared against the paper's values (DRAM rows use
 * midpoints of the published ranges) and the relative-cost column is
 * recomputed against the INT8 ADD baseline exactly as the paper does.
 */

#include "bench_util.h"
#include "energy/energy_model.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

using namespace cq::energy;

WorkloadResult
run(const WorkloadContext &)
{
    using namespace op;
    struct Row
    {
        const char *metric;
        double ours;  // pJ
        double paper; // pJ (Table I; mid of ranges for DRAM)
    };
    const Row rows[] = {
        {"fp32_add_pj", kFp32Add, 0.9},
        {"fp32_mul_pj", kFp32Mul, 3.7},
        {"int32_add_pj", kInt32Add, 0.1},
        {"int32_mul_pj", kInt32Mul, 3.1},
        {"dram32_pj", dramAccess(32), 975.0},
        {"fp16_add_pj", kFp16Add, 0.4},
        {"fp16_mul_pj", kFp16Mul, 1.1},
        {"int16_add_pj", kInt16Add, 0.05},
        {"int16_mul_pj", kInt16Mul, 1.55},
        {"dram16_pj", dramAccess(16), 490.0},
        {"int8_add_pj", kInt8Add, 0.03},
        {"int8_mul_pj", kInt8Mul, 0.2},
        {"dram8_pj", dramAccess(8), 245.0},
    };

    WorkloadResult out;
    const double base = kInt8Add; // the paper's "relative cost 1"
    double maxRelErr = 0.0;
    for (const auto &r : rows) {
        out.set(r.metric, r.ours, "pJ");
        const double err =
            r.paper > 0.0 ? std::abs(r.ours - r.paper) / r.paper : 0.0;
        maxRelErr = std::max(maxRelErr, err);
    }
    out.set("rel_cost_fp32_mul", op::kFp32Mul / base, "x");
    out.set("rel_cost_int8_mul", op::kInt8Mul / base, "x");
    out.set("max_rel_err_vs_paper", maxRelErr);
    out.notes = "energy-model constants vs Table I; relative costs "
                "against the INT8 ADD baseline";
    return out;
}

} // namespace

void
registerTable1OpEnergy()
{
    Registry::instance().add(
        {"table1_op_energy", "energy",
         "per-operation energy at 45 nm vs the paper's Table I",
         "Cambricon-Q, ISCA'21, Table I", run});
}

} // namespace cq::bench::workloads
