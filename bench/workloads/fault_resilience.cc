/**
 * @file
 * Fault-resilience sweep: final accuracy of a quantized (HQT)
 * training run vs DRAM bit-flip rate under three protection levels
 * (DESIGN.md §5):
 *
 *   unprotected   - faults land on bare FP32 masters
 *   rollback-only - guardrails + CRC checkpoints (detect/recover)
 *   ECC+ABFT      - in-situ SEC-DED over the masters with background
 *                   scrubbing, plus ABFT-checksummed GEMMs, plus the
 *                   rollback ladder underneath
 *
 * A second sweep targets the PE-array accumulators (compute faults
 * no memory ECC can see). Quick mode runs the smoke subset the CI
 * resilience job greps (it still exercises both correction tiers).
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/workload.h"
#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/quant_trainer.h"
#include "sim/faults/fault_injector.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

enum class Arm
{
    Unprotected,
    RollbackOnly,
    EccAbft,
    GuardedCompute,     ///< accumulator faults, guardrails only
    GuardedComputeAbft, ///< accumulator faults, guardrails + ABFT
};

nn::Network
makeMlp(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));
    return net;
}

struct SweepPoint
{
    double accuracyPct = 0.0;
    std::size_t rollbacks = 0;
    bool diverged = false;
    StatGroup stats;
};

SweepPoint
runArm(double rate, Arm arm, int steps, const std::string &ckpt)
{
    nn::SpiralDataset data(2, 0.1, 17);
    nn::Network net = makeMlp(18);

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    cfg.resilience.enabled = arm != Arm::Unprotected;
    cfg.resilience.checkpointPath =
        arm != Arm::Unprotected ? ckpt : "";
    cfg.resilience.checkpointInterval = 10;
    if (arm == Arm::EccAbft) {
        cfg.resilience.ecc.enabled = true;
        cfg.resilience.ecc.scrubWordsPerStep = 16;
        cfg.resilience.abft.enabled = true;
    }
    if (arm == Arm::GuardedComputeAbft)
        cfg.resilience.abft.enabled = true;
    nn::QuantTrainer trainer(net, cfg);

    sim::FaultConfig fcfg;
    fcfg.seed = 0xBEEF;
    fcfg.bitFlipsPerMbit = rate;
    fcfg.burstLength = 1;
    const bool computeArm = arm == Arm::GuardedCompute ||
                            arm == Arm::GuardedComputeAbft;
    fcfg.targetMasterWeights = !computeArm;
    fcfg.targetAccumulators = computeArm;
    sim::FaultInjector inj(fcfg);
    if (rate > 0.0)
        trainer.setFaultInjector(&inj);

    SweepPoint p;
    for (int i = 0; i < steps; ++i) {
        const auto b = data.sample(64);
        const double loss =
            trainer.stepClassification(b.inputs, b.labels);
        if (!std::isfinite(loss))
            p.diverged = true;
    }
    const auto eval = data.evalSet(256);
    p.accuracyPct =
        100.0 * trainer.evalAccuracy(eval.inputs, eval.labels);
    p.rollbacks = trainer.rollbackCount();
    p.stats = trainer.resilienceStats();
    if (!std::isfinite(p.accuracyPct))
        p.diverged = true;
    return p;
}

WorkloadResult
run(const WorkloadContext &ctx)
{
    // The sweep is cheap (an MLP on 2-D points); quick mode trims the
    // rate grid but keeps full training length so accuracy floors
    // (ACC-01) measure converged runs in CI too.
    const int steps = 200;
    const std::vector<double> rates =
        ctx.quick ? std::vector<double>{100.0}
                  : std::vector<double>{100.0, 1000.0, 4000.0};
    const std::vector<double> accRates =
        ctx.quick ? std::vector<double>{10.0}
                  : std::vector<double>{10.0, 50.0};
    const std::string ckpt = "/tmp/cq_bench_fault_resilience.ckpt";

    WorkloadResult out;
    for (const double rate : rates) {
        const std::string tag = std::to_string(
            static_cast<long long>(rate));
        const SweepPoint un =
            runArm(rate, Arm::Unprotected, steps, ckpt);
        const SweepPoint ea = runArm(rate, Arm::EccAbft, steps, ckpt);
        out.set("acc_unprotected_" + tag,
                un.diverged ? 0.0 : un.accuracyPct, "%");
        out.set("acc_ecc_abft_" + tag,
                ea.diverged ? 0.0 : ea.accuracyPct, "%");
        out.set("rollbacks_ecc_abft_" + tag,
                static_cast<double>(ea.rollbacks));
        if (rate == rates.front()) {
            // The counters the CI resilience job greps to prove both
            // in-situ correction tiers engaged.
            out.set("ecc_corrected", ea.stats.get("ecc.corrected"));
            out.set("ecc_uncorrectable",
                    ea.stats.get("ecc.uncorrectable"));
            out.set("ecc_scanned_words",
                    ea.stats.get("ecc.scannedWords"));
            out.set("ecc_scrubbed_words",
                    ea.stats.get("ecc.scrubbedWords"));
        }
    }

    for (const double rate : accRates) {
        const std::string tag = std::to_string(
            static_cast<long long>(rate));
        const SweepPoint ga =
            runArm(rate, Arm::GuardedComputeAbft, steps, ckpt);
        out.set("acc_compute_abft_" + tag,
                ga.diverged ? 0.0 : ga.accuracyPct, "%");
        if (rate == accRates.front()) {
            out.set("abft_gemms", ga.stats.get("abft.gemms"));
            out.set("abft_corrected",
                    ga.stats.get("abft.corrected"));
            out.set("abft_escalations",
                    ga.stats.get("abft.escalations"));
        }
    }
    std::remove(ckpt.c_str());
    out.notes = "faults on FP32 masters (post-encode for the ECC arm) "
                "and on PE accumulators; burst length 1";
    return out;
}

} // namespace

void
registerFaultResilience()
{
    Registry::instance().add(
        {"fault_resilience", "resilience",
         "accuracy vs bit-flip rate under rollback / ECC+ABFT "
         "protection",
         "supplementary to Cambricon-Q, ISCA'21 (DESIGN.md §5)",
         run});
}

} // namespace cq::bench::workloads
