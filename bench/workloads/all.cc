#include "workloads/all.h"

#include "harness/workload.h"

namespace cq::bench::workloads {

void
registerAll()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    registerTable1OpEnergy();
    registerTable7HwCharacteristics();
    registerTable2Table9Comparison();
    registerTable8Accuracy();
    registerFig2GradientStats();
    registerFig3GpuQuantOverhead();
    registerFig12PerfEnergy();
    registerFig13Scalability();
    registerLdqCompression();
    registerAblationInt4();
    registerAblationDesignSpace();
    registerFaultResilience();
    registerServeThroughput();
    registerScaleoutAllreduce();
    registerKernels();
    registerObsOverhead();
}

} // namespace cq::bench::workloads
