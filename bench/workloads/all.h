/**
 * @file
 * Per-file registration hooks for the workload set. Registration is
 * explicit (workloads::registerAll() calls each hook) rather than
 * static-initializer magic, so a static-library link never silently
 * drops a workload and tests can register a controlled subset.
 */

#ifndef CQ_BENCH_WORKLOADS_ALL_H
#define CQ_BENCH_WORKLOADS_ALL_H

namespace cq::bench::workloads {

void registerTable1OpEnergy();
void registerTable7HwCharacteristics();
void registerTable2Table9Comparison();
void registerTable8Accuracy();
void registerFig2GradientStats();
void registerFig3GpuQuantOverhead();
void registerFig12PerfEnergy();
void registerFig13Scalability();
void registerLdqCompression();
void registerAblationInt4();
void registerAblationDesignSpace();
void registerFaultResilience();
void registerServeThroughput();
void registerScaleoutAllreduce();
void registerKernels();
void registerObsOverhead();

} // namespace cq::bench::workloads

#endif // CQ_BENCH_WORKLOADS_ALL_H
