/**
 * @file
 * Observability overhead budget (PERF-07): the same training leg runs
 * dark (tracing off, no scrape endpoint) and lit (TraceSession on, an
 * ObsServer up, a sidecar thread scraping /metrics at 10 Hz), three
 * interleaved repetitions each. The gated metric is
 *
 *   overhead_frac = max(0, litMin / darkMin - 1)
 *
 * with min-of-reps on both sides so scheduler noise cancels instead
 * of accumulating. bench/gates.json bounds it at 5%: the live
 * observability plane must stay cheap enough to leave on in
 * production runs.
 *
 * The deterministic companion metric crc_identical re-asserts the
 * obs-identity invariant right here in the bench: every leg, dark or
 * scraped, must finish with the same masters CRC.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/threadpool.h"
#include "harness/workload.h"
#include "nn/guard/crash_harness.h"
#include "obs/http_export.h"
#include "obs/obs_server.h"
#include "obs/trace.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Leg
{
    double ms = 0.0;
    std::uint32_t crc = 0;
    std::uint64_t steps = 0;
};

Leg
runLeg(const WorkloadContext &ctx, std::uint64_t steps, bool lit)
{
    nn::guard::CrashHarnessConfig cfg;
    cfg.seed = ctx.seed;
    cfg.steps = steps;
    // Production-shaped steps: with a microscopic batch every span's
    // fixed cost (two clock reads + a ring append) would be measured
    // against a microseconds-long step and the budget would gate the
    // toy, not the plane.
    cfg.batchSize = 256;
    // Width-1 legs: pool handoffs add run-to-run variance bigger than
    // the effect under test, and a deployment scraping a box leaves
    // the plane a spare core anyway. The pool's 1-vs-N determinism
    // contract keeps the CRCs comparable either way.
    CallerWidthCapScope width(1);

    obs::TraceSession &trace = obs::TraceSession::instance();
    obs::ObsServer server;
    std::atomic<bool> stopScrape{false};
    std::thread scraper;
    if (lit) {
        trace.setEnabled(true);
        obs::ObsServerConfig scfg; // ephemeral port
        if (server.start(scfg)) {
            scraper = std::thread([&] {
                while (!stopScrape.load()) {
                    int status = 0;
                    std::string body;
                    obs::httpGet(server.port(), "/metrics", status,
                                 body, 1000);
                    ::usleep(100000); // 10 Hz
                }
            });
        }
    }

    const double t0 = nowMs();
    const auto r = nn::guard::runCrashHarness(cfg);
    const double t1 = nowMs();

    if (lit) {
        stopScrape.store(true);
        if (scraper.joinable())
            scraper.join();
        server.stop();
        trace.setEnabled(false);
        trace.clear(); // bound span memory across reps
    }
    return {t1 - t0, r.mastersCrc, r.stepsRun};
}

WorkloadResult
run(const WorkloadContext &ctx)
{
    const std::uint64_t steps = ctx.quick ? 150 : 400;
    const int reps = ctx.quick ? 5 : 7;

    WorkloadResult out;
    double darkMin = 0.0, litMin = 0.0;
    std::uint32_t refCrc = 0;
    bool crcIdentical = true;
    for (int rep = 0; rep < reps; ++rep) {
        // Interleaved legs in alternating order: frequency scaling, a
        // noisy neighbour, or a warm-up ramp hits both arms, not just
        // whichever happens to run second.
        Leg dark, lit;
        if (rep % 2 == 0) {
            dark = runLeg(ctx, steps, false);
            lit = runLeg(ctx, steps, true);
        } else {
            lit = runLeg(ctx, steps, true);
            dark = runLeg(ctx, steps, false);
        }
        if (rep == 0)
            refCrc = dark.crc;
        crcIdentical = crcIdentical && dark.crc == refCrc &&
                       lit.crc == refCrc &&
                       dark.steps == steps && lit.steps == steps;
        darkMin = (rep == 0) ? dark.ms : std::min(darkMin, dark.ms);
        litMin = (rep == 0) ? lit.ms : std::min(litMin, lit.ms);
    }

    const double frac =
        darkMin > 0.0 ? std::max(0.0, litMin / darkMin - 1.0) : 0.0;
    out.setTiming("dark_ms", darkMin);
    out.setTiming("lit_ms", litMin);
    out.setTiming("overhead_frac", frac, "x");
    out.set("crc_identical", crcIdentical ? 1.0 : 0.0);
    out.notes = "lit = tracing on + /metrics scraped at 10 Hz; "
                "min over interleaved alternating-order reps per arm; "
                "CRCs must match the dark leg bit for bit";
    return out;
}

} // namespace

void
registerObsOverhead()
{
    Registry::instance().add(
        {"obs_overhead", "obs",
         "step-time overhead of live tracing + 10 Hz /metrics scrape "
         "vs a dark run",
         "observability budget (DESIGN.md §6)",
         run});
}

} // namespace cq::bench::workloads
