/**
 * @file
 * Sec. VII-C: switching the 4-bit-PE array from INT8 (bit-serial,
 * 4 passes) to native INT4 (1 pass) should buy roughly 2.33x
 * performance and 2.35x energy efficiency on 4-bit-capable models.
 */

#include <cmath>
#include <string>

#include "bench_util.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &ctx)
{
    const auto cfg = arch::CambriconQConfig::edge();
    WorkloadResult out;

    double geoPerf = 1.0, geoEnergy = 1.0;
    int count = 0;
    for (const char *which :
         {static_cast<const char *>("resnet18"), "googlenet",
          "squeezenet"}) {
        if (ctx.quick && std::string(which) == "googlenet")
            continue;
        const compiler::WorkloadIR ir =
            std::string(which) == "resnet18"
                ? compiler::buildResNet18()
                : (std::string(which) == "googlenet"
                       ? compiler::buildGoogLeNet()
                       : compiler::buildSqueezeNet());

        compiler::CodegenOptions o8;
        o8.bits = 8;
        compiler::CodegenOptions o4;
        o4.bits = 4;
        const auto r8 = runCambriconQ(ir, cfg, o8);
        const auto r4 = runCambriconQ(ir, cfg, o4);
        const double s = r8.timeMs / r4.timeMs;
        const double e = r8.energyMj / r4.energyMj;
        geoPerf *= s;
        geoEnergy *= e;
        ++count;
        out.set(std::string("int4_speedup_") + which, s, "x");
        out.set(std::string("int4_energy_gain_") + which, e, "x");
    }
    out.set("int4_speedup_geomean", std::pow(geoPerf, 1.0 / count),
            "x");
    out.set("int4_energy_gain_geomean",
            std::pow(geoEnergy, 1.0 / count), "x");
    out.notes = "paper: 2.33x perf, 2.35x energy; memory-bound "
                "phases cap the gain below the 4x compute peak";
    return out;
}

} // namespace

void
registerAblationInt4()
{
    Registry::instance().add(
        {"ablation_int4", "perf",
         "INT4 vs INT8 (bit-serial) on the 4-bit PE array",
         "Cambricon-Q, ISCA'21, Sec. VII-C", run});
}

} // namespace cq::bench::workloads
