/**
 * @file
 * Scale-out benchmark: N-chip data-parallel training over the modeled
 * interconnect (src/dist/), with LDQ-quantized ring all-reduce. Three
 * arms share one seed:
 *
 *   clean     — fault-free baseline: wire traffic, quantized-vs-fp32
 *               wire ratio, simulated collective time per step.
 *   crash     — one chip crashes mid-run; survivors rebalance the
 *               global batch and must commit every remaining step.
 *   straggler — one chip turns persistent straggler and is evicted
 *               by the per-message collective deadline.
 *
 * The PERF-06 gate holds `steps_completed_frac == 1` across the two
 * failure arms: an injected single-chip failure may cost retries and
 * a rebalance, but never a committed step (DESIGN.md §8). Accuracy
 * deltas between arms quantify the cost of losing a shard; all
 * non-timing metrics are deterministic in the seed (simulated time
 * included — the interconnect clock is modeled, not measured).
 */

#include <chrono>
#include <cmath>
#include <string>

#include "dist/dist_harness.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

dist::DistHarnessResult
runArm(const WorkloadContext &ctx, std::uint64_t steps,
       std::size_t chips, const dist::ChipFaultPlan &plan)
{
    dist::DistHarnessConfig cfg;
    cfg.seed = ctx.seed;
    cfg.chips = chips;
    cfg.steps = steps;
    cfg.faults.assign(chips, {});
    cfg.faults[chips - 1] = plan;
    return dist::runDistHarness(cfg);
}

WorkloadResult
run(const WorkloadContext &ctx)
{
    const std::size_t chips = 4;
    const std::uint64_t steps = ctx.quick ? 40 : 150;
    const std::uint64_t faultStep = steps / 3;

    const auto t0 = std::chrono::steady_clock::now();
    const dist::DistHarnessResult clean =
        runArm(ctx, steps, chips, {});
    const auto t1 = std::chrono::steady_clock::now();

    dist::ChipFaultPlan crashPlan;
    crashPlan.crashAtStep = faultStep;
    const dist::DistHarnessResult crash =
        runArm(ctx, steps, chips, crashPlan);

    dist::ChipFaultPlan stragPlan;
    stragPlan.stragglerFromStep = faultStep;
    const dist::DistHarnessResult strag =
        runArm(ctx, steps, chips, stragPlan);

    WorkloadResult out;
    out.set("chips", static_cast<double>(chips));
    out.set("steps", static_cast<double>(steps));

    // Clean arm: the wire-cost figures of merit.
    const dist::DistTrainerResult &c = clean.train;
    out.set("bytes_on_wire", static_cast<double>(c.bytesOnWire),
            "B");
    out.set("wire_ratio_fp32",
            c.bytesOnWire > 0 ? static_cast<double>(c.fp32Bytes) /
                                    static_cast<double>(c.bytesOnWire)
                              : 0.0,
            "x");
    out.set("sim_us_per_step",
            steps > 0 ? c.simUs / static_cast<double>(steps) : 0.0,
            "us");
    out.set("clean_accuracy", clean.accuracy * 100.0, "%");
    out.set("replicas_identical",
            c.replicasIdentical && crash.train.replicasIdentical &&
                    strag.train.replicasIdentical
                ? 1.0
                : 0.0);
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.setTiming("steps_per_sec",
                  wallMs > 0.0 ? 1000.0 * static_cast<double>(steps) /
                                     wallMs
                               : 0.0,
                  "steps/s");

    // Failure arms: a single-chip loss may cost retries and a
    // rebalance, never a committed step (the PERF-06 invariant).
    const std::uint64_t committed =
        crash.train.stepsCompleted + strag.train.stepsCompleted;
    out.set("steps_completed_frac",
            static_cast<double>(committed) /
                static_cast<double>(2 * steps),
            "frac");
    out.set("chip_failures",
            static_cast<double>(crash.train.failures.size() +
                                strag.train.failures.size()));
    out.set("steps_retried",
            static_cast<double>(crash.train.stepsRetried +
                                strag.train.stepsRetried));
    out.set("retransmits",
            static_cast<double>(c.retransmits +
                                crash.train.retransmits +
                                strag.train.retransmits));
    out.set("crash_accuracy_delta",
            std::fabs(clean.accuracy - crash.accuracy) * 100.0, "%");
    out.set("straggler_accuracy_delta",
            std::fabs(clean.accuracy - strag.accuracy) * 100.0, "%");

    out.notes = "4-chip ring all-reduce (LDQ-quantized hops); crash "
                "and straggler arms lose chip 3 at step " +
                std::to_string(faultStep) +
                " and must still commit every step on survivors";
    return out;
}

} // namespace

void
registerScaleoutAllreduce()
{
    Registry::instance().add(
        {"scaleout_allreduce", "dist",
         "N-chip data-parallel training over the modeled "
         "interconnect: wire cost, and survivor continuity under "
         "chip crash / straggler eviction",
         "supplementary to Cambricon-Q, ISCA'21 (DESIGN.md §8)",
         run});
}

} // namespace cq::bench::workloads
