/**
 * @file
 * Fig. 12 (a)-(d): the headline evaluation. For every Table VI
 * network, simulate one quantized-training minibatch on Cambricon-Q,
 * Cambricon-Q without NDP (Sec. VII-D ablation), the TPU baseline
 * and the Jetson TX2 GPU model; record the geomean speedups, the
 * energy-efficiency gains, the CQ energy split (Fig. 12(d)) and the
 * NDP-ablation penalty.
 */

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &)
{
    struct Row
    {
        std::string net;
        PlatformResult cq, cqNoNdp, tpu, gpu;
    };
    std::vector<Row> rows;

    for (const auto &ir : compiler::allBenchmarks()) {
        Row row;
        row.net = ir.name;
        row.cq = runCambriconQ(ir, arch::CambriconQConfig::edge());
        row.cqNoNdp =
            runCambriconQ(ir, arch::CambriconQConfig::edgeNoNdp());
        row.tpu = runTpu(ir);
        row.gpu = runGpu(ir, baseline::GpuSpec::jetsonTx2(), true);
        rows.push_back(std::move(row));
    }

    WorkloadResult out;
    double geoGpu = 1.0, geoTpu = 1.0, geoEGpu = 1.0, geoETpu = 1.0;
    double geoNoNdpTpu = 1.0;
    double accMj = 0.0, bufMj = 0.0, ddrSbMj = 0.0, ddrDyMj = 0.0;
    double worstNdpPenalty = 0.0;
    for (const auto &r : rows) {
        geoGpu *= r.gpu.timeMs / r.cq.timeMs;
        geoTpu *= r.tpu.timeMs / r.cq.timeMs;
        geoEGpu *= r.gpu.energyMj / r.cq.energyMj;
        geoETpu *= r.tpu.energyMj / r.cq.energyMj;
        geoNoNdpTpu *= r.tpu.timeMs / r.cqNoNdp.timeMs;
        out.set("speedup_vs_gpu_" + r.net,
                r.gpu.timeMs / r.cq.timeMs, "x");
        out.set("speedup_vs_tpu_" + r.net,
                r.tpu.timeMs / r.cq.timeMs, "x");
        accMj += r.cq.accMj;
        bufMj += r.cq.bufMj;
        ddrSbMj += r.cq.ddrSbMj;
        ddrDyMj += r.cq.ddrDyMj;
        worstNdpPenalty =
            std::max(worstNdpPenalty,
                     r.cqNoNdp.timeMs / r.cq.timeMs - 1.0);
    }
    const double n = static_cast<double>(rows.size());
    out.set("networks", n);
    out.set("speedup_vs_gpu_geomean", std::pow(geoGpu, 1.0 / n), "x");
    out.set("speedup_vs_tpu_geomean", std::pow(geoTpu, 1.0 / n), "x");
    out.set("energy_eff_vs_gpu_geomean", std::pow(geoEGpu, 1.0 / n),
            "x");
    out.set("energy_eff_vs_tpu_geomean", std::pow(geoETpu, 1.0 / n),
            "x");
    out.set("no_ndp_speedup_vs_tpu_geomean",
            std::pow(geoNoNdpTpu, 1.0 / n), "x");
    out.set("no_ndp_worst_time_penalty_pct", 100.0 * worstNdpPenalty,
            "%");

    // Fig. 12(d): CQ energy split aggregated over all networks.
    const double total = accMj + bufMj + ddrSbMj + ddrDyMj;
    out.set("energy_frac_acc", accMj / total);
    out.set("energy_frac_buf", bufMj / total);
    out.set("energy_frac_ddr_standby", ddrSbMj / total);
    out.set("energy_frac_ddr_dynamic", ddrDyMj / total);
    out.notes = "paper: 4.20x GPU / 1.70x TPU speedup, 6.41x GPU / "
                "1.62x TPU energy; DDR dominates Fig. 12(d)";
    return out;
}

} // namespace

void
registerFig12PerfEnergy()
{
    Registry::instance().add(
        {"fig12_perf_energy", "perf",
         "headline speedup/energy vs GPU+TPU with NDP ablation and "
         "energy split",
         "Cambricon-Q, ISCA'21, Fig. 12(a)-(d) + Sec. VII-D", run});
}

} // namespace cq::bench::workloads
