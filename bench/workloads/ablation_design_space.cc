/**
 * @file
 * Design-space ablations beyond the paper's figures (DESIGN.md
 * "ours" row): sensitivity of Cambricon-Q's ResNet-18 training step
 * to (1) memory bandwidth, (2) SQU quant-unit width under 4-way
 * E2BQM, and (3) on-chip buffer capacity.
 */

#include <string>

#include "bench_util.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &ctx)
{
    const compiler::WorkloadIR ir = compiler::buildResNet18();
    const compiler::WorkloadIR alex = compiler::buildAlexNet();

    WorkloadResult out;

    // (1) memory bandwidth scaling (channels)
    double baseMs = 0.0, baseAlex = 0.0;
    for (unsigned ch : {1u, 2u, 4u}) {
        if (ctx.quick && ch == 2)
            continue;
        auto cfg = arch::CambriconQConfig::edge();
        cfg.dram = dram::DramConfig::scaled(ch);
        const auto r = runCambriconQ(ir, cfg);
        const auto ra = runCambriconQ(alex, cfg);
        if (ch == 1) {
            baseMs = r.timeMs;
            baseAlex = ra.timeMs;
        }
        const std::string tag = std::to_string(ch) + "x";
        out.set("bw_gain_resnet18_" + tag, baseMs / r.timeMs, "x");
        out.set("bw_gain_alexnet_" + tag, baseAlex / ra.timeMs, "x");
    }

    // (2) SQU quant width under 4-way E2BQM
    double squBase = 0.0;
    for (unsigned width : {64u, 32u, 16u}) {
        if (ctx.quick && width == 32)
            continue;
        auto cfg = arch::CambriconQConfig::edge();
        cfg.squQuantBytesPerCycle = width;
        const auto r = runCambriconQ(ir, cfg);
        if (width == 64)
            squBase = r.timeMs;
        out.set("squ_width_slowdown_" + std::to_string(width) + "B",
                r.timeMs / squBase, "x");
    }

    // (3) on-chip buffer capacity
    double bufBase = 0.0;
    for (unsigned scale : {1u, 2u, 4u}) {
        if (ctx.quick && scale == 2)
            continue;
        auto cfg = arch::CambriconQConfig::edge();
        cfg.nbinBytes *= scale;
        cfg.sbBytes *= scale;
        cfg.nboutBytes *= scale;
        const auto r = runCambriconQ(ir, cfg);
        if (scale == 1)
            bufBase = r.timeMs;
        out.set("buffer_gain_" + std::to_string(scale) + "x",
                bufBase / r.timeMs, "x");
    }

    out.notes = "ResNet-18 compute-bound at edge BW; throttled SQU "
                "width surfaces as Q-phase time; buffer gains "
                "marginal";
    return out;
}

} // namespace

void
registerAblationDesignSpace()
{
    Registry::instance().add(
        {"ablation_design_space", "perf",
         "bandwidth / SQU-width / buffer-capacity sensitivity on "
         "ResNet-18",
         "supplementary to Cambricon-Q, ISCA'21", run});
}

} // namespace cq::bench::workloads
