/**
 * @file
 * Table VII: area and power of every Cambricon-Q module at 45 nm,
 * plus the derived Sec. VI-A claims (extra area/power of the
 * quantization support, NDP engine cost, peak efficiency).
 */

#include "bench_util.h"
#include "energy/energy_model.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &)
{
    const auto hw = energy::HwCharacteristics::cambriconQ();

    WorkloadResult out;
    out.set("core_area_mm2", hw.coreAreaMm2(), "mm^2");
    out.set("core_power_mw", hw.corePowerMw(), "mW");
    out.set("ndp_area_mm2", hw.ndpAreaMm2(), "mm^2");
    out.set("ndp_power_mw", hw.ndpPowerMw(), "mW");

    // Sec. VI-A derived claims: quantization support costs only
    // 5.87% extra area (0.51 mm^2) / 13.95% extra power (124.36 mW).
    double qArea = 0.0, qPower = 0.0;
    for (const auto &m : hw.coreModules) {
        if (m.name == "SQU" || m.name == "QBC") {
            qArea += m.areaMm2;
            qPower += m.powerMw;
        }
    }
    out.set("quant_support_area_mm2", qArea, "mm^2");
    out.set("quant_support_area_pct",
            100.0 * qArea / hw.coreAreaMm2(), "%");
    out.set("quant_support_power_mw", qPower, "mW");
    out.set("quant_support_power_pct",
            100.0 * qPower / hw.corePowerMw(), "%");
    out.notes = "paper: quant support 5.87% area / 13.95% power; "
                "NDP 0.49 mm^2 / 138.94 mW";
    return out;
}

} // namespace

void
registerTable7HwCharacteristics()
{
    Registry::instance().add(
        {"table7_hw_characteristics", "energy",
         "module area/power at 45 nm and Sec. VI-A derived claims",
         "Cambricon-Q, ISCA'21, Table VII + Sec. VI-A", run});
}

} // namespace cq::bench::workloads
