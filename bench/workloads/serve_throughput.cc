/**
 * @file
 * Serving-path benchmark: drives the multi-tenant job scheduler
 * (src/serve/) through a steady phase (capacity >= offered load, so
 * every job is admitted) and an overload burst (queue capacity far
 * below the burst, so admission control sheds and rejects). Exports
 * throughput and queue-latency figures plus the accounting
 * invariants the PERF-05 gate holds: every accepted job reaches a
 * terminal state (terminal_frac == 1, zero lost jobs).
 *
 * Raw admitted/shed/rejected counts under overload depend on how
 * fast workers drain the queue, so those are exported as
 * timing-flagged metrics; the non-timing metrics (steady-phase
 * completion counts, retry counts, loss counters) are deterministic
 * for a fixed seed.
 */

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/workload.h"
#include "serve/scheduler.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

serve::JobSpec
steadySpec(int i, std::uint64_t seed)
{
    serve::JobSpec s;
    s.id = "steady-" + std::to_string(i);
    const char *tenants[] = {"acme", "blue", "crab"};
    s.tenant = tenants[i % 3];
    s.kind = i % 3 == 0 ? serve::JobKind::Sim : serve::JobKind::Sweep;
    s.priority = static_cast<serve::Priority>(i % 3);
    s.seed = seed + static_cast<std::uint64_t>(i);
    s.steps = 12 + i % 5;
    s.maxRetries = 2;
    // Every 5th job fails its first attempt: the retry path is part
    // of the steady-state cost and must not lose jobs.
    if (i % 5 == 4)
        s.chaos.failAttempts = 1;
    return s;
}

struct PhaseFigures
{
    serve::SchedulerStats stats;
    double wallMs = 0.0;
    double p95QueueMs = 0.0;
};

double
p95QueueMs(const std::vector<serve::JobReport> &reports)
{
    std::vector<double> q;
    q.reserve(reports.size());
    for (const auto &r : reports)
        q.push_back(r.queueMs);
    if (q.empty())
        return 0.0;
    std::sort(q.begin(), q.end());
    const std::size_t idx =
        std::min(q.size() - 1, q.size() * 95 / 100);
    return q[idx];
}

PhaseFigures
runSteady(int jobs, std::uint64_t seed)
{
    serve::SchedulerConfig cfg;
    cfg.workers = 3;
    cfg.queue.capacity = static_cast<std::size_t>(jobs);
    cfg.backoffBaseMs = 1;
    cfg.backoffCapMs = 5;
    cfg.backoffScale = 0.25;
    serve::Scheduler sched(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < jobs; ++i)
        sched.submit(steadySpec(i, seed));
    sched.waitIdle();
    const auto t1 = std::chrono::steady_clock::now();

    PhaseFigures f;
    f.stats = sched.stats();
    f.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    f.p95QueueMs = p95QueueMs(sched.reports());
    return f;
}

PhaseFigures
runOverload(int jobs, std::uint64_t seed)
{
    serve::SchedulerConfig cfg;
    cfg.workers = 2;
    cfg.queue.capacity = 4;
    cfg.shrinkWatermark = 0.5;
    cfg.backoffBaseMs = 1;
    cfg.backoffCapMs = 5;
    cfg.backoffScale = 0.25;
    serve::Scheduler sched(cfg);

    Rng rng(seed ^ 0x0ddba11);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < jobs; ++i) {
        serve::JobSpec s = steadySpec(i, seed);
        s.id = "burst-" + std::to_string(i);
        s.priority =
            static_cast<serve::Priority>(rng.below(3));
        sched.submit(s);
    }
    sched.waitIdle();
    const auto t1 = std::chrono::steady_clock::now();

    PhaseFigures f;
    f.stats = sched.stats();
    f.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    f.p95QueueMs = p95QueueMs(sched.reports());
    return f;
}

WorkloadResult
run(const WorkloadContext &ctx)
{
    const int steadyJobs = ctx.quick ? 24 : 96;
    const int burstJobs = ctx.quick ? 32 : 128;

    const PhaseFigures st = runSteady(steadyJobs, ctx.seed);
    const PhaseFigures ov = runOverload(burstJobs, ctx.seed);

    WorkloadResult out;

    // Steady phase: capacity >= offered load, so admission and
    // completion counts are deterministic.
    out.set("steady_jobs", static_cast<double>(steadyJobs));
    out.set("steady_completed",
            static_cast<double>(st.stats.completed));
    out.set("steady_retries", static_cast<double>(st.stats.retries));
    out.set("steady_lost",
            static_cast<double>(st.stats.accepted -
                                st.stats.terminal()));
    out.setTiming("steady_jobs_per_sec",
                  st.wallMs > 0.0
                      ? 1000.0 * steadyJobs / st.wallMs
                      : 0.0,
                  "jobs/s");
    out.setTiming("steady_p95_queue_ms", st.p95QueueMs, "ms");

    // Overload burst: how many land in each bucket depends on drain
    // speed (timing), but the accounting invariant does not -- every
    // accepted job must reach a terminal state.
    out.set("overload_offered", static_cast<double>(burstJobs));
    out.set("overload_lost",
            static_cast<double>(ov.stats.accepted -
                                ov.stats.terminal()));
    out.setTiming("overload_accepted",
                  static_cast<double>(ov.stats.accepted), "jobs");
    out.setTiming("overload_completed",
                  static_cast<double>(ov.stats.completed), "jobs");
    out.setTiming("overload_shed",
                  static_cast<double>(ov.stats.shed), "jobs");
    out.setTiming("overload_rejected_full",
                  static_cast<double>(ov.stats.rejectedFull),
                  "jobs");
    out.setTiming("overload_degraded",
                  static_cast<double>(ov.stats.degraded), "jobs");
    out.setTiming("overload_jobs_per_sec",
                  ov.wallMs > 0.0
                      ? 1000.0 * burstJobs / ov.wallMs
                      : 0.0,
                  "jobs/s");
    out.setTiming("overload_p95_queue_ms", ov.p95QueueMs, "ms");

    // The PERF-05 gate: terminal states across both phases cover
    // every accepted job (no hangs, no lost work).
    const std::uint64_t accepted =
        st.stats.accepted + ov.stats.accepted;
    const std::uint64_t terminal =
        st.stats.terminal() + ov.stats.terminal();
    out.set("terminal_frac",
            accepted > 0
                ? static_cast<double>(terminal) /
                      static_cast<double>(accepted)
                : 1.0,
            "frac");

    out.notes = "steady phase admits everything (capacity == load); "
                "overload bursts into a 4-deep queue to exercise "
                "shed/reject/degrade";
    return out;
}

} // namespace

void
registerServeThroughput()
{
    Registry::instance().add(
        {"serve_throughput", "serve",
         "multi-tenant scheduler throughput, queue latency, and "
         "overload accounting (admit/shed/reject)",
         "supplementary to Cambricon-Q, ISCA'21 (DESIGN.md §7)",
         run});
}

} // namespace cq::bench::workloads
