/**
 * @file
 * Tables II and IX: the hardware-support matrix is qualitative, so
 * this workload records the quantitative half -- the peak-efficiency
 * figure of merit (paper: 2.24 TOPS/W @ INT8, 45 nm) recomputed from
 * the modeled peak throughput and the Table VII power.
 */

#include "bench_util.h"
#include "energy/energy_model.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &)
{
    const auto cfg = arch::CambriconQConfig::edge();
    const auto hw = energy::HwCharacteristics::cambriconQ();
    const double peakTopsInt8 =
        2.0 * cfg.peakMacsPerCycleInt8() * cfg.freqGhz / 1e3;
    const double eff = peakTopsInt8 / (hw.corePowerMw() / 1000.0);

    WorkloadResult out;
    out.set("peak_tops_int8", peakTopsInt8, "TOPS");
    out.set("peak_tops_int4", 4.0 * peakTopsInt8, "TOPS");
    out.set("core_power_mw", hw.corePowerMw(), "mW");
    out.set("peak_tops_per_w_int8", eff, "TOPS/W");
    // Table II support matrix, counted: capabilities implemented here
    // (low bit-width PEs, SQU statistics, QBC reformatting, NDP
    // in-place update) out of the four the paper compares.
    out.set("table2_capabilities_implemented", 4.0);
    out.notes = "paper Table IX: 2 TOPS INT8 / 8 TOPS INT4, "
                "2.24 TOPS/W";
    return out;
}

} // namespace

void
registerTable2Table9Comparison()
{
    Registry::instance().add(
        {"table2_table9_comparison", "energy",
         "peak throughput and TOPS/W figure of merit vs Table IX",
         "Cambricon-Q, ISCA'21, Table II + Table IX", run});
}

} // namespace cq::bench::workloads
