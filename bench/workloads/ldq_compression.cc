/**
 * @file
 * Sec. III-A: LDQ compression ratio versus block size (analytic
 * formula and measured storage), and the LDQ-vs-DQ reconstruction
 * error across gradient-like distributions.
 */

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/workload.h"
#include "quant/block_quant.h"
#include "tensor/tensor_ops.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &ctx)
{
    const std::size_t n = ctx.quick ? (1 << 20) : (1 << 22);

    Rng rng(ctx.seed);
    Tensor x({n});
    x.fillGaussian(rng, 0.0f, 0.02f);

    WorkloadResult out;
    const double dqRatio = quant::dqCompressionRatio(n);
    double maxLossPct = 0.0;
    for (std::size_t k :
         {std::size_t(200), std::size_t(1024), std::size_t(4000)}) {
        const auto q = quant::ldqQuantize(x, k, 8);
        const double measured =
            4.0 * static_cast<double>(n) / q.storageBytes();
        const double lossPct = 100.0 * (1.0 - measured / dqRatio);
        out.set("compression_k" + std::to_string(k), measured, "x");
        maxLossPct = std::max(maxLossPct, lossPct);
    }
    out.set("compression_dq", dqRatio, "x");
    out.set("max_compression_loss_vs_dq_pct", maxLossPct, "%");

    // ---- error: LDQ vs layer-wise DQ across distributions ----
    struct Case
    {
        const char *metric;
        Tensor data;
    };
    std::vector<Case> cases;
    {
        Tensor t({1 << 16});
        t.fillGaussian(rng, 0.0f, 0.01f);
        cases.push_back({"rmse_ratio_uniform_gaussian", t});
    }
    {
        Tensor t({1 << 16});
        // Per-block scales spanning 3 orders of magnitude (the
        // layer-to-layer spread of Fig. 2 folded into one tensor).
        for (std::size_t i = 0; i < t.numel(); ++i) {
            const double sigma =
                std::pow(10.0, -3.0 + 3.0 * ((i / 4096) % 16) / 15.0);
            t[i] = static_cast<float>(rng.gaussian(0.0, sigma));
        }
        cases.push_back({"rmse_ratio_block_varying", t});
    }
    {
        Tensor t({1 << 16});
        for (std::size_t i = 0; i < t.numel(); ++i)
            t[i] = static_cast<float>(rng.gaussian(0.0, 0.01));
        for (int i = 0; i < 64; ++i)
            t[rng.below(t.numel())] =
                static_cast<float>(rng.gaussian(0.0, 1.0));
        cases.push_back({"rmse_ratio_long_tail", t});
    }

    double minRatio = 1e300;
    for (const auto &c : cases) {
        const double eDq =
            rmse(c.data, quant::dqQuantize(c.data, 8).dequantize());
        const double eLdq =
            rmse(c.data, quant::fakeQuantizeLdq(c.data, 1024, 8));
        const double ratio = eDq / eLdq;
        out.set(c.metric, ratio, "x");
        minRatio = std::min(minRatio, ratio);
    }
    out.set("rmse_ratio_min", minRatio, "x");
    out.notes = "paper: K>=200 keeps compression loss <1%; LDQ error "
                "never worse than layer-wise DQ";
    return out;
}

} // namespace

void
registerLdqCompression()
{
    Registry::instance().add(
        {"ldq_compression", "accuracy",
         "LDQ compression ratio vs block size and LDQ-vs-DQ error",
         "Cambricon-Q, ISCA'21, Sec. III-A", run});
}

} // namespace cq::bench::workloads
