/**
 * @file
 * Fig. 13 + Sec. VII-A: performance scalability. Cambricon-Q-T
 * (8 arrays) against the GTX 1080Ti, Cambricon-Q-V (8x8 array mesh)
 * against the V100, and the edge configuration against the Jetson
 * TX2, on ResNet-18 and the PTB LSTM.
 */

#include <algorithm>
#include <string>

#include "bench_util.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &ctx)
{
    struct Pair
    {
        arch::CambriconQConfig cfg;
        baseline::GpuSpec gpu;
        const char *tag;
    };
    const Pair pairs[] = {
        {arch::CambriconQConfig::edge(),
         baseline::GpuSpec::jetsonTx2(), "edge"},
        {arch::CambriconQConfig::throughputT(),
         baseline::GpuSpec::gtx1080Ti(), "qt"},
        {arch::CambriconQConfig::throughputV(),
         baseline::GpuSpec::v100(), "qv"},
    };

    WorkloadResult out;
    double minResnet = 1e300, minLstm = 1e300;
    for (const char *which :
         {static_cast<const char *>("resnet18"), "lstm"}) {
        const bool isResnet = std::string(which) == "resnet18";
        if (ctx.quick && !isResnet)
            continue; // quick mode: ResNet-18 column only
        const compiler::WorkloadIR ir = isResnet
                                            ? compiler::buildResNet18()
                                            : compiler::buildPtbLstm();
        for (const auto &p : pairs) {
            const auto cqRes = runCambriconQ(ir, p.cfg);
            const auto gpuRes = runGpu(ir, p.gpu, true);
            const double speedup = gpuRes.timeMs / cqRes.timeMs;
            out.set(std::string("speedup_") + which + "_" + p.tag,
                    speedup, "x");
            if (isResnet)
                minResnet = std::min(minResnet, speedup);
            else
                minLstm = std::min(minLstm, speedup);
        }
    }
    out.set("speedup_resnet18_min", minResnet, "x");
    if (!ctx.quick)
        out.set("speedup_lstm_min", minLstm, "x");
    out.notes = "paper shape: each scaled config outruns its "
                "peak-comparable GPU on both networks";
    return out;
}

} // namespace

void
registerFig13Scalability()
{
    Registry::instance().add(
        {"fig13_scalability", "perf",
         "scaled Cambricon-Q-T/-V configs vs peak-comparable GPUs",
         "Cambricon-Q, ISCA'21, Fig. 13 + Sec. VII-A", run});
}

} // namespace cq::bench::workloads
