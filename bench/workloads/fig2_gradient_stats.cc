/**
 * @file
 * Fig. 2: gradient distributions vary by orders of magnitude across
 * layers and training iterations -- the motivation for dynamic
 * statistic-based quantization. Trains the CNN stand-in recording
 * max|gradient| per layer per step (the SQU statistic) and reports
 * the per-layer and per-step spreads mirroring Fig. 2 (a)/(b).
 */

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>

#include "bench_util.h"
#include "harness/workload.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &ctx)
{
    const std::size_t classes = 4;
    nn::PatternImageDataset data(classes, 1, 12, 12, 0.35,
                                 4321 + ctx.seed);
    Rng rng(3);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, 8, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu1",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2, 2));
    net.add(std::make_unique<nn::Conv2d>(
        "conv2", Conv2dGeometry{8, 16, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu2",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", 16, classes, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::fp32();
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    cfg.recordGradientStats = true;
    nn::QuantTrainer trainer(net, cfg);

    const int steps = ctx.quick ? 60 : 200;
    for (int step = 0; step < steps; ++step) {
        const auto batch = data.sample(32);
        trainer.stepClassification(batch.inputs, batch.labels);
    }

    // Organize records: layer -> step -> maxAbs.
    std::map<std::size_t, std::map<std::size_t, double>> byLayer;
    for (const auto &rec : trainer.gradientRecords())
        byLayer[rec.layerIndex][rec.step] = rec.maxAbs;

    // Spread across layers at the final step.
    double layerMin = 1e300, layerMax = 0.0;
    for (const auto &[layer, series] : byLayer) {
        const double v = series.rbegin()->second;
        if (v > 0.0) {
            layerMin = std::min(layerMin, v);
            layerMax = std::max(layerMax, v);
        }
    }

    // Spread across steps for the first conv layer.
    double stepMin = 1e300, stepMax = 0.0;
    for (const auto &[step, v] : byLayer.begin()->second) {
        if (v > 0.0) {
            stepMin = std::min(stepMin, v);
            stepMax = std::max(stepMax, v);
        }
    }

    WorkloadResult out;
    out.set("layers_tracked", static_cast<double>(byLayer.size()));
    out.set("steps", static_cast<double>(steps));
    out.set("grad_spread_across_layers_x", layerMax / layerMin, "x");
    out.set("grad_spread_across_steps_x", stepMax / stepMin, "x");
    out.set("grad_max_abs_final_step", layerMax);
    out.notes = "paper: ~2 orders across layers, ~3 across "
                "iterations; no static range fits all";
    return out;
}

} // namespace

void
registerFig2GradientStats()
{
    Registry::instance().add(
        {"fig2_gradient_stats", "accuracy",
         "max|grad| spread across layers and iterations (SQU "
         "motivation)",
         "Cambricon-Q, ISCA'21, Fig. 2", run});
}

} // namespace cq::bench::workloads
