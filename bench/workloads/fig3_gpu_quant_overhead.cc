/**
 * @file
 * Fig. 3: on a CPU+GPU platform, statistic-quantized training is
 * *slower* than ordinary FP32 training (1.09x~1.78x in the paper)
 * because the GPU lacks on-the-fly statistic/quantization hardware
 * and must round-trip through the host.
 */

#include <algorithm>

#include "bench_util.h"
#include "harness/workload.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

WorkloadResult
run(const WorkloadContext &)
{
    const auto gpu = baseline::GpuSpec::jetsonTx2();

    double minRatio = 1e9, maxRatio = 0.0;
    std::size_t networks = 0;
    WorkloadResult out;
    for (const auto &ir : compiler::allBenchmarks()) {
        const auto fp32 = baseline::simulateGpu(ir, gpu, false);
        const auto quant = baseline::simulateGpu(ir, gpu, true);
        const double ratio = quant.timeMs / fp32.timeMs;
        minRatio = std::min(minRatio, ratio);
        maxRatio = std::max(maxRatio, ratio);
        out.set("slowdown_" + ir.name, ratio, "x");
        ++networks;
    }
    out.set("networks", static_cast<double>(networks));
    out.set("slowdown_min", minRatio, "x");
    out.set("slowdown_max", maxRatio, "x");
    out.set("host_quant_roundtrip_ms", gpu.hostQuantMs, "ms");
    out.notes = "paper band: 1.09x .. 1.78x; host round trips erase "
                "the INT8 benefit on GPU";
    return out;
}

} // namespace

void
registerFig3GpuQuantOverhead()
{
    Registry::instance().add(
        {"fig3_gpu_quant_overhead", "perf",
         "statistic-quantized vs FP32 training slowdown on the GPU "
         "baseline",
         "Cambricon-Q, ISCA'21, Fig. 3", run});
}

} // namespace cq::bench::workloads
