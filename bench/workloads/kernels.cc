/**
 * @file
 * Microbenchmarks of the software kernels the repository is built
 * on, re-hosted from the former google-benchmark main onto the
 * harness's own repeat/clock machinery: streaming statistics, LDQ /
 * E2BQM quantization, GEMM with a thread-scaling sweep, the
 * bit-serial PE datapath, the NDPO update and the DRAM controller's
 * transfer hot path.
 *
 * Every clock-derived metric is recorded with the timing flag (so
 * determinism checks skip it) and the thread sweeps record wall AND
 * process-CPU milliseconds side by side: on a 1-core CI box the wall
 * ratio is flat while the CPU ratio shows the true parallel work,
 * which keeps the reported "speedup" honest.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/ndp_engine.h"
#include "arch/pe_array.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "dram/dram_controller.h"
#include "harness/workload.h"
#include "nn/optimizer.h"
#include "obs/cpu_time.h"
#include "quant/block_quant.h"
#include "quant/e2bqm.h"
#include "quant/statistics.h"
#include "tensor/tensor_ops.h"
#include "workloads/all.h"

namespace cq::bench::workloads {

namespace {

Tensor
gradientTensor(std::size_t n)
{
    Rng rng(7);
    Tensor x({n});
    x.fillGaussian(rng, 0.0f, 0.01f);
    return x;
}

/** Run fn() `iters` times, return the wall/CPU interval. */
obs::TimeInterval
timeIt(int iters, const std::function<void()> &fn)
{
    const obs::TimeSample begin = obs::sampleClocks();
    for (int i = 0; i < iters; ++i)
        fn();
    return obs::elapsedSince(begin);
}

/** Record wall + process-CPU ms under <name>_wall_ms/_cpu_ms. */
void
recordInterval(WorkloadResult &out, const std::string &name,
               const obs::TimeInterval &t)
{
    out.setTiming(name + "_wall_ms", t.wallMs);
    out.setTiming(name + "_cpu_ms", t.processCpuMs);
}

// ---------------- quantization kernels ----------------

WorkloadResult
runQuant(const WorkloadContext &ctx)
{
    WorkloadResult out;
    const int iters = ctx.quick ? 4 : 16;

    {
        const Tensor x = gradientTensor(1 << 16);
        double sink = 0.0;
        const auto t = timeIt(iters, [&] {
            quant::MaxAbsStat stat;
            for (std::size_t i = 0; i < x.numel(); ++i)
                stat.observe(x[i]);
            sink += stat.value();
        });
        recordInterval(out, "maxabs_64k", t);
        out.set("maxabs_value", sink / iters);
    }
    {
        const Tensor x = gradientTensor(1 << 16);
        std::size_t sink = 0;
        const auto t = timeIt(iters, [&] {
            sink += quant::ldqQuantize(x, 1024, 8).storageBytes();
        });
        recordInterval(out, "ldq_quantize_64k_k1024", t);
        out.set("ldq_storage_bytes",
                static_cast<double>(sink / iters), "B");
    }
    {
        const Tensor x = gradientTensor(4096);
        const auto cfg = quant::E2bqmConfig::clippingLadder(8);
        int sink = 0;
        const auto t = timeIt(iters, [&] {
            sink += quant::e2bqmQuantize(x, cfg).selected;
        });
        recordInterval(out, "e2bqm_4way_4k", t);
        out.set("e2bqm_selected_sum", static_cast<double>(sink));
    }

    // HQT thread-scaling sweep over the shared pool.
    const std::vector<unsigned> widths =
        ctx.quick ? std::vector<unsigned>{1, 2}
                  : std::vector<unsigned>{1, 2, 4, 8};
    const Tensor x = gradientTensor(1 << 18);
    const auto cfg = quant::E2bqmConfig::clippingLadder(8);
    for (unsigned w : widths) {
        ThreadPool::instance().setNumThreads(w);
        const auto t = timeIt(iters, [&] {
            Tensor q = quant::fakeQuantizeHqt(x, 1024, cfg);
        });
        recordInterval(out, "hqt_threads" + std::to_string(w), t);
    }
    ThreadPool::instance().setNumThreads(0);
    out.notes = "HQT sweep: wall vs CPU ms per pool width over a "
                "256k-element fake-quantize";
    return out;
}

// ---------------- GEMM ----------------

WorkloadResult
runGemm(const WorkloadContext &ctx)
{
    WorkloadResult out;
    const int iters = ctx.quick ? 2 : 8;

    for (std::size_t n : {std::size_t(64), std::size_t(128),
                          std::size_t(256)}) {
        if (ctx.quick && n == 256)
            continue;
        Rng rng(3);
        Tensor a({n, n}), b({n, n});
        a.fillGaussian(rng, 0.0f, 1.0f);
        b.fillGaussian(rng, 0.0f, 1.0f);
        float sink = 0.0f;
        const auto t = timeIt(iters, [&] {
            Tensor c = matmul(a, b);
            sink += c[0];
        });
        recordInterval(out, "gemm_n" + std::to_string(n), t);
    }

    // Thread-scaling sweep: wall AND CPU ms at each pool width. The
    // wall ratio is the delivered speedup; the CPU ratio exposes
    // oversubscription (CPU ms growing while wall ms stalls).
    const std::size_t n = ctx.quick ? 256 : 512;
    const std::vector<unsigned> widths =
        ctx.quick ? std::vector<unsigned>{1, 2}
                  : std::vector<unsigned>{1, 2, 4, 8};
    Rng rng(3);
    Tensor a({n, n}), b({n, n});
    a.fillGaussian(rng, 0.0f, 1.0f);
    b.fillGaussian(rng, 0.0f, 1.0f);
    double wall1 = 0.0;
    for (unsigned w : widths) {
        ThreadPool::instance().setNumThreads(w);
        float sink = 0.0f;
        const auto t = timeIt(ctx.quick ? 2 : 3, [&] {
            Tensor c = matmul(a, b);
            sink += c[0];
        });
        const std::string tag =
            "gemm_scaling_threads" + std::to_string(w);
        recordInterval(out, tag, t);
        if (w == 1)
            wall1 = t.wallMs;
        else
            out.setTiming(tag + "_speedup", wall1 / t.wallMs, "x");
    }
    ThreadPool::instance().setNumThreads(0);
    out.set("gemm_scaling_n", static_cast<double>(n));
    out.notes = "matmul over the shared pool; speedup is wall-clock "
                "vs the 1-thread width";
    return out;
}

// ---------------- architecture-model hot paths ----------------

WorkloadResult
runArch(const WorkloadContext &ctx)
{
    WorkloadResult out;
    const int iters = ctx.quick ? 8 : 64;

    {
        Rng rng(5);
        std::vector<std::int32_t> a(4096), b(4096);
        for (std::size_t i = 0; i < a.size(); ++i) {
            a[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
            b[i] = static_cast<std::int32_t>(rng.below(255)) - 127;
        }
        std::int64_t sink = 0;
        const auto t = timeIt(iters, [&] {
            sink += arch::PeArray::dotProduct(a, 8, b, 8);
        });
        recordInterval(out, "bitserial_dot_4k", t);
        out.set("bitserial_dot_value",
                static_cast<double>(sink / iters));
    }
    {
        nn::OptimizerConfig cfg;
        cfg.kind = nn::OptimizerKind::Adam;
        arch::NdpEngine ndp;
        ndp.configure(nn::NdpoConstants::fromConfig(cfg));
        std::vector<float> w(1 << 16, 0.5f), m(1 << 16, 0.0f),
            v(1 << 16, 0.0f), g(1 << 16, 0.01f);
        const auto t = timeIt(iters, [&] {
            ndp.weightGradientStore(w, m, v, g);
        });
        recordInterval(out, "ndpo_update_64k", t);
        out.set("ndpo_final_w0", static_cast<double>(w[0]));
    }
    {
        dram::DramController ctrl(dram::DramConfig::lpddr4_2133());
        Tick t0 = 0;
        Addr addr = 0;
        const auto t = timeIt(iters * 8, [&] {
            t0 = ctrl.transfer(t0, addr, 1 << 16, false);
            addr += 1 << 16;
        });
        recordInterval(out, "dram_transfer_64k", t);
        out.set("dram_final_tick", static_cast<double>(t0));
    }
    {
        dram::DramController ctrl(dram::DramConfig::lpddr4_2133());
        Tick t0 = 0;
        const auto t = timeIt(iters * 8, [&] {
            t0 = ctrl.ndpUpdate(t0, 0, 1 << 14, 4);
        });
        recordInterval(out, "dram_ndp_update_16k", t);
        out.set("dram_ndp_final_tick", static_cast<double>(t0));
    }
    out.notes = "bit-serial PE dot product, NDPO update and DRAM "
                "controller hot paths";
    return out;
}

} // namespace

void
registerKernels()
{
    Registry::instance().add(
        {"kernels_quant", "kernels",
         "statistic/LDQ/E2BQM/HQT kernel timings with a pool-width "
         "sweep",
         "repository kernels (supplementary)", runQuant});
    Registry::instance().add(
        {"kernels_gemm", "kernels",
         "GEMM timings and the thread-scaling wall-vs-CPU sweep",
         "repository kernels (supplementary)", runGemm});
    Registry::instance().add(
        {"kernels_arch", "kernels",
         "bit-serial PE, NDPO update and DRAM controller hot paths",
         "repository kernels (supplementary)", runArch});
}

} // namespace cq::bench::workloads
