/**
 * @file
 * Fig. 12 (a)-(d): the headline evaluation. For every Table VI
 * network, simulate one quantized-training minibatch on Cambricon-Q,
 * Cambricon-Q without NDP (Sec. VII-D ablation), the TPU baseline and
 * the Jetson TX2 GPU model, then report:
 *
 *   (a) speedup of Cambricon-Q (and w/o NDP) over GPU and TPU,
 *   (b) the execution-time breakdown FW / NG / WG / WU / S / Q,
 *   (c) energy-efficiency gains over GPU and TPU,
 *   (d) the energy breakdown ACC / BUF / DDR-SB / DDR-DY.
 *
 * Cambricon-Q runs both evaluated algorithms identically (Sec. V-B:
 * "same manner but with different parameters"), so one simulation per
 * network covers both algorithm columns of the paper's figure.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace cq;

int
main()
{
    bench::banner("Fig. 12 -- performance & energy vs GPU and TPU",
                  "Cambricon-Q, ISCA'21, Fig. 12(a)-(d) + Sec. VII-D");

    struct Row
    {
        std::string net;
        bench::PlatformResult cq, cq_no_ndp, tpu, gpu;
    };
    std::vector<Row> rows;

    for (const auto &ir : compiler::allBenchmarks()) {
        Row row;
        row.net = ir.name;
        std::fprintf(stderr, "[fig12] simulating %s...\n",
                     ir.name.c_str());
        row.cq = bench::runCambriconQ(
            ir, arch::CambriconQConfig::edge());
        row.cq_no_ndp = bench::runCambriconQ(
            ir, arch::CambriconQConfig::edgeNoNdp());
        row.tpu = bench::runTpu(ir);
        row.gpu =
            bench::runGpu(ir, baseline::GpuSpec::jetsonTx2(), true);
        rows.push_back(std::move(row));
    }

    // ---------------- (a) speedup ----------------
    std::printf("\n(a) speedup of Cambricon-Q (normalized to each "
                "baseline)\n");
    std::printf("%-14s %10s %10s %16s %16s\n", "network", "vs GPU",
                "vs TPU", "w/o NDP vs GPU", "w/o NDP vs TPU");
    bench::rule();
    double geo_gpu = 1.0, geo_tpu = 1.0;
    for (const auto &r : rows) {
        const double s_gpu = r.gpu.timeMs / r.cq.timeMs;
        const double s_tpu = r.tpu.timeMs / r.cq.timeMs;
        geo_gpu *= s_gpu;
        geo_tpu *= s_tpu;
        std::printf("%-14s %9.2fx %9.2fx %15.2fx %15.2fx\n",
                    r.net.c_str(), s_gpu, s_tpu,
                    r.gpu.timeMs / r.cq_no_ndp.timeMs,
                    r.tpu.timeMs / r.cq_no_ndp.timeMs);
    }
    geo_gpu = std::pow(geo_gpu, 1.0 / rows.size());
    geo_tpu = std::pow(geo_tpu, 1.0 / rows.size());
    bench::rule();
    std::printf("%-14s %9.2fx %9.2fx    (paper: 4.20x GPU, 1.70x "
                "TPU)\n",
                "geomean", geo_gpu, geo_tpu);

    // ---------------- (b) time breakdown ----------------
    std::printf("\n(b) training-step time breakdown (%% of busy "
                "time)\n");
    std::printf("%-14s %-10s", "network", "platform");
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        std::printf("%6s",
                    arch::phaseName(static_cast<arch::Phase>(p)));
    std::printf("\n");
    bench::rule();
    for (const auto &r : rows) {
        for (const auto *pr : {&r.cq, &r.cq_no_ndp, &r.tpu}) {
            std::printf("%-14s %-10s", r.net.c_str(),
                        pr == &r.cq        ? "CQ"
                        : pr == &r.cq_no_ndp ? "CQ-noNDP"
                                             : "TPU");
            for (std::size_t p = 0; p < arch::kNumPhases; ++p)
                std::printf("%5.1f%%", 100.0 * pr->phaseFrac[p]);
            std::printf("\n");
        }
    }

    // ---------------- (c) energy efficiency ----------------
    std::printf("\n(c) energy-efficiency gain of Cambricon-Q\n");
    std::printf("%-14s %12s %12s %12s %12s\n", "network", "CQ (mJ)",
                "TPU (mJ)", "vs GPU", "vs TPU");
    bench::rule();
    double geo_egpu = 1.0, geo_etpu = 1.0;
    for (const auto &r : rows) {
        const double e_gpu = r.gpu.energyMj / r.cq.energyMj;
        const double e_tpu = r.tpu.energyMj / r.cq.energyMj;
        geo_egpu *= e_gpu;
        geo_etpu *= e_tpu;
        std::printf("%-14s %12.1f %12.1f %11.2fx %11.2fx\n",
                    r.net.c_str(), r.cq.energyMj, r.tpu.energyMj,
                    e_gpu, e_tpu);
    }
    geo_egpu = std::pow(geo_egpu, 1.0 / rows.size());
    geo_etpu = std::pow(geo_etpu, 1.0 / rows.size());
    bench::rule();
    std::printf("%-14s %25s %11.2fx %11.2fx   (paper: 6.41x GPU, "
                "1.62x TPU)\n",
                "geomean", "", geo_egpu, geo_etpu);

    // ---------------- (d) energy breakdown ----------------
    std::printf("\n(d) energy breakdown (%% of platform total)\n");
    std::printf("%-14s %-10s %8s %8s %8s %8s\n", "network",
                "platform", "ACC", "BUF", "DDR-SB", "DDR-DY");
    bench::rule();
    for (const auto &r : rows) {
        for (const auto *pr : {&r.cq, &r.tpu}) {
            const double total = pr->accMj + pr->bufMj + pr->ddrSbMj +
                                 pr->ddrDyMj;
            std::printf("%-14s %-10s %7.1f%% %7.1f%% %7.1f%% "
                        "%7.1f%%\n",
                        r.net.c_str(),
                        pr == &r.cq ? "CQ" : "TPU",
                        100.0 * pr->accMj / total,
                        100.0 * pr->bufMj / total,
                        100.0 * pr->ddrSbMj / total,
                        100.0 * pr->ddrDyMj / total);
        }
    }

    // ---------------- Sec. VII-D summary ----------------
    std::printf("\nSec. VII-D (NDP ablation): time penalty of removing "
                "the NDP engine\n");
    bench::rule();
    for (const auto &r : rows) {
        std::printf("%-14s %+6.1f%%   (WU share without NDP: "
                    "%.1f%%)\n",
                    r.net.c_str(),
                    100.0 * (r.cq_no_ndp.timeMs / r.cq.timeMs - 1.0),
                    100.0 * r.cq_no_ndp
                                .phaseFrac[static_cast<std::size_t>(
                                    arch::Phase::WU)]);
    }
    std::printf("paper shape: large penalty on weight-heavy models "
                "(AlexNet, Transformer),\n"
                "negligible on GoogLeNet/SqueezeNet; w/o NDP still "
                "beats the TPU on average.\n");
    return 0;
}
