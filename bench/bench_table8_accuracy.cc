/**
 * @file
 * Table VIII: training accuracy of FP32 vs Zhu-2019 vs Zhang-2020,
 * each with and without HQT.
 *
 * Substitution (see DESIGN.md): ImageNet / WMT17 / PennTreeBank are
 * replaced by procedurally generated tasks small enough to train on a
 * CPU in seconds -- four CNN stand-ins of different width/depth on
 * pattern-image classification, a Transformer block on a sequence-
 * rule task (accuracy substitutes BLEU) and an LSTM language model on
 * a synthetic Markov corpus (perplexity, lower is better). The
 * quantity under test is the paper's: the accuracy *delta* between
 * quantization policies on identical seeds/data, expected within a
 * fraction of a percent of FP32, with +HQT matching or beating the
 * layer-wise algorithms.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/conv2d.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/pooling.h"
#include "nn/quant_trainer.h"

using namespace cq;

namespace {

/** CNN stand-in parameterized by width/depth. */
nn::Network
makeCnn(std::uint64_t seed, std::size_t c1, std::size_t c2, int depth,
        std::size_t classes)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Conv2d>(
        "conv1", Conv2dGeometry{1, c1, 3, 3, 1, 1}, rng));
    net.add(std::make_unique<nn::Activation>("relu1",
                                             nn::ActKind::ReLU));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2, 2));
    for (int d = 0; d < depth; ++d) {
        const std::string tag = std::to_string(d + 2);
        net.add(std::make_unique<nn::Conv2d>(
            "conv" + tag,
            Conv2dGeometry{d == 0 ? c1 : c2, c2, 3, 3, 1, 1}, rng));
        net.add(std::make_unique<nn::Activation>("relu" + tag,
                                                 nn::ActKind::ReLU));
    }
    net.add(std::make_unique<nn::GlobalAvgPool>("gap"));
    net.add(std::make_unique<nn::Linear>("fc", c2, classes, rng));
    return net;
}

double
trainCnn(const quant::AlgorithmConfig &algo, std::size_t c1,
         std::size_t c2, int depth)
{
    const std::size_t classes = 4;
    nn::PatternImageDataset data(classes, 1, 12, 12, 1.2, 1234);
    nn::Network net = makeCnn(11, c1, c2, depth, classes);
    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 3e-3;
    nn::QuantTrainer trainer(net, cfg);
    for (int step = 0; step < 150; ++step) {
        const auto batch = data.sample(32);
        trainer.stepClassification(batch.inputs, batch.labels);
    }
    const auto eval = data.evalSet(512);
    return 100.0 * trainer.evalAccuracy(eval.inputs, eval.labels);
}

double
trainTransformer(const quant::AlgorithmConfig &algo)
{
    const std::size_t classes = 4, vocab = 12, seq = 12, dim = 32;
    const std::size_t batch = 16;
    nn::SequenceRuleDataset data(classes, vocab, seq, 77);
    Rng rng(13);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("embed", vocab, dim, rng));
    net.add(std::make_unique<nn::PositionalEncoding>("pos", seq, dim));
    net.add(std::make_unique<nn::TransformerBlock>(
        "block", batch, seq, dim, 4, 2 * dim, rng));
    // Mean-pool over time is approximated by scoring every position
    // and training on the last one; simpler: classify from a linear
    // head applied to all rows, with labels repeated per position.
    net.add(std::make_unique<nn::Linear>("head", dim, classes, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 1e-3;
    nn::QuantTrainer trainer(net, cfg);

    const auto expand = [&](const std::vector<int> &labels) {
        std::vector<int> out;
        out.reserve(labels.size() * seq);
        for (int l : labels)
            for (std::size_t t = 0; t < seq; ++t)
                out.push_back(l);
        return out;
    };

    for (int step = 0; step < 150; ++step) {
        const auto b = data.sample(batch);
        trainer.stepClassification(b.inputs, expand(b.labels));
    }
    const auto eval = data.evalSet(batch); // fixed geometry
    double acc = 0.0;
    const int eval_rounds = 8;
    for (int r = 0; r < eval_rounds; ++r) {
        // Re-sample eval batches deterministically via the dataset's
        // internal stream (geometry fixed by the attention block).
        const auto b = data.sample(batch);
        acc += trainer.evalAccuracy(b.inputs, expand(b.labels));
    }
    (void)eval;
    return 100.0 * acc / eval_rounds;
}

double
trainLstm(const quant::AlgorithmConfig &algo)
{
    const std::size_t vocab = 16, hidden = 48, seq = 16, batch = 16;
    nn::MarkovTextDataset data(vocab, 55);
    Rng rng(17);
    nn::Network net;
    net.add(std::make_unique<nn::Lstm>("lstm", vocab, hidden, rng));
    net.add(std::make_unique<nn::MergeLeading>("merge"));
    net.add(std::make_unique<nn::Linear>("proj", hidden, vocab, rng));

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = algo;
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    nn::QuantTrainer trainer(net, cfg);

    for (int step = 0; step < 150; ++step) {
        const auto b = data.sample(seq, batch);
        trainer.stepLanguageModel(b.inputs, b.targets, vocab);
    }
    const auto eval = data.evalSet(seq, 64);
    return trainer.evalPerplexity(eval.inputs, eval.targets, vocab);
}

} // namespace

int
main()
{
    bench::banner("Table VIII -- training accuracy (synthetic "
                  "substitution)",
                  "Cambricon-Q, ISCA'21, Table VIII");

    const quant::AlgorithmConfig algos[] = {
        quant::AlgorithmConfig::fp32(),
        quant::AlgorithmConfig::zhu2019(),
        quant::AlgorithmConfig::zhu2019Hqt(256),
        quant::AlgorithmConfig::zhang2020(),
        quant::AlgorithmConfig::zhang2020Hqt(256),
    };

    std::printf("%-18s %8s %8s %8s %8s %8s\n", "model (stand-in)",
                "FP32", "Zhu", "Zhu+HQT", "Zhang", "Zhang+HQT");
    bench::rule();

    struct CnnSpec
    {
        const char *name;
        std::size_t c1, c2;
        int depth;
    };
    const CnnSpec cnns[] = {
        {"AlexNet", 8, 16, 1},
        {"ResNet-18", 8, 16, 3},
        {"GoogLeNet", 12, 24, 2},
        {"SqueezeNet", 6, 12, 2},
    };
    for (const auto &c : cnns) {
        std::printf("%-18s", c.name);
        for (const auto &algo : algos) {
            std::printf(" %7.1f%%",
                        trainCnn(algo, c.c1, c.c2, c.depth));
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("%-18s", "Transformer (acc)");
    for (const auto &algo : algos) {
        std::printf(" %7.1f%%", trainTransformer(algo));
        std::fflush(stdout);
    }
    std::printf("\n");

    std::printf("%-18s", "LSTM (perplexity*)");
    for (const auto &algo : algos) {
        std::printf(" %8.2f", trainLstm(algo));
        std::fflush(stdout);
    }
    std::printf("\n");
    bench::rule();
    std::printf("*Lower is better. Paper reference deltas vs FP32: "
                "Zhu <= 1.2%% loss on CNNs (fails on LSTM),\n"
                " Zhang within 0.4%%, and +HQT matching or slightly "
                "improving its base algorithm.\n");

    // ---- extended Table III coverage: the other two published
    // statistic-based algorithms (Wang'18 FP8, Yang'20 INT8) on the
    // CNN stand-ins, demonstrating HQT's algorithm generality
    // (Sec. VII-B). ----
    std::printf("\nextended coverage (Table III algorithms):\n");
    std::printf("%-18s %8s %8s %8s\n", "model (stand-in)", "FP32",
                "Wang'18", "Yang'20");
    bench::rule();
    const quant::AlgorithmConfig extra[] = {
        quant::AlgorithmConfig::fp32(),
        quant::AlgorithmConfig::wang2018(),
        quant::AlgorithmConfig::yang2020(),
    };
    for (const auto &c : {cnns[0], cnns[1]}) {
        std::printf("%-18s", c.name);
        for (const auto &algo : extra) {
            std::printf(" %7.1f%%",
                        trainCnn(algo, c.c1, c.c2, c.depth));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("Wang'18 quantizes to FP8 (1-5-2) with loss scaling; "
                "Yang'20 to plain max-abs INT8.\n");
    return 0;
}
