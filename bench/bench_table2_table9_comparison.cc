/**
 * @file
 * Tables II and IX: qualitative hardware-support comparison against
 * prior training hardware, with the "this paper" column checked
 * against what this repository actually implements, plus the derived
 * peak-efficiency figure of merit (2.24 TOPS/W @ INT8, 45 nm) that
 * Table IX reports -- recomputed here from the modeled peak
 * throughput and the Table VII power.
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace cq;

int
main()
{
    bench::banner("Tables II & IX -- hardware support and peak "
                  "efficiency",
                  "Cambricon-Q, ISCA'21, Table II + Table IX");

    // ---- Table II: support matrix. The Cambricon-Q column reflects
    // the modules implemented in this repository. ----
    std::printf("Table II -- hardware support for quantized "
                "training:\n");
    std::printf("  %-26s %6s %6s %10s %7s %6s\n", "capability", "V100",
                "TPU", "FloatPIM", "SIGMA", "CQ");
    bench::rule();
    struct Row
    {
        const char *what;
        const char *v100, *tpu, *floatpim, *sigma, *cq;
    };
    const Row rows[] = {
        {"low bit-width units", "yes", "yes", "yes", "yes",
         "yes (4-bit PEs, src/arch/pe_array)"},
        {"statistical analysis", "no", "no", "no", "no",
         "yes (SQU, src/arch/squ)"},
        {"reformating", "yes", "no", "no", "yes",
         "yes (Quant Unit + QBC, src/arch/qbc)"},
        {"in-place weight update", "no", "no", "yes", "no",
         "yes (NDP engine, src/arch/ndp_engine)"},
    };
    for (const auto &r : rows) {
        std::printf("  %-26s %6s %6s %10s %7s %s\n", r.what, r.v100,
                    r.tpu, r.floatpim, r.sigma, r.cq);
    }

    // ---- Table IX: peak energy efficiency ----
    const auto cfg = arch::CambriconQConfig::edge();
    const auto hw = energy::HwCharacteristics::cambriconQ();
    const double peak_tops_int8 =
        2.0 * cfg.peakMacsPerCycleInt8() * cfg.freqGhz / 1e3;
    const double eff = peak_tops_int8 / (hw.corePowerMw() / 1000.0);
    const double peak_tops_int4 = 4.0 * peak_tops_int8;

    std::printf("\nTable IX -- derived figures of merit (45 nm):\n");
    bench::rule();
    std::printf("  peak throughput: %.2f TOPS @ INT8, %.1f TOPS @ "
                "INT4 (paper: 2 TOPS / 8 TOPS)\n",
                peak_tops_int8, peak_tops_int4);
    std::printf("  core power:      %.2f mW (Table VII)\n",
                hw.corePowerMw());
    std::printf("  peak efficiency: %.2f TOPS/W @ INT8  (paper Table "
                "IX: 2.24 TOPS/W)\n",
                eff);
    std::printf("  training bit-widths: INT4/8/12/16 fixed point "
                "(bit-serial multiples of the 4-bit PE)\n");
    std::printf("  dynamic quantization support: on-the-fly SQU "
                "statistic + quantization (unique in Table IX)\n");
    return eff > 2.0 && eff < 2.5 ? 0 : 1;
}
