/**
 * @file
 * Fig. 13 + Sec. VII-A: performance scalability. Cambricon-Q-T
 * (8 arrays, 68.24 GB/s) against the GTX 1080Ti and Cambricon-Q-V
 * (8x8 array mesh, 272.96 GB/s) against the V100, on ResNet-18 and
 * the PTB LSTM, plus the edge configuration against the Jetson TX2.
 */

#include <cstdio>

#include "bench_util.h"

using namespace cq;

int
main()
{
    bench::banner("Fig. 13 -- scaling Cambricon-Q to Cambricon-Q-T / "
                  "Cambricon-Q-V",
                  "Cambricon-Q, ISCA'21, Fig. 13 + Sec. VII-A");

    struct Pair
    {
        arch::CambriconQConfig cfg;
        baseline::GpuSpec gpu;
    };
    const Pair pairs[] = {
        {arch::CambriconQConfig::edge(), baseline::GpuSpec::jetsonTx2()},
        {arch::CambriconQConfig::throughputT(),
         baseline::GpuSpec::gtx1080Ti()},
        {arch::CambriconQConfig::throughputV(), baseline::GpuSpec::v100()},
    };

    for (const char *which : {"ResNet-18", "LSTM"}) {
        const compiler::WorkloadIR ir =
            std::string(which) == "ResNet-18"
                ? compiler::buildResNet18()
                : compiler::buildPtbLstm();
        std::printf("\n%s (batch %zu):\n", which, ir.batch);
        std::printf("  %-16s %12s | %-12s %12s %9s\n", "config",
                    "time (ms)", "GPU", "time (ms)", "speedup");
        bench::rule();
        for (const auto &p : pairs) {
            std::fprintf(stderr, "[fig13] %s on %s...\n", which,
                         p.cfg.name.c_str());
            const auto cq = bench::runCambriconQ(ir, p.cfg);
            const auto gpu = bench::runGpu(ir, p.gpu, true);
            std::printf("  %-16s %12.2f | %-12s %12.2f %8.2fx\n",
                        p.cfg.name.c_str(), cq.timeMs,
                        p.gpu.name.c_str(), gpu.timeMs,
                        gpu.timeMs / cq.timeMs);
        }
    }
    bench::rule();
    std::printf("paper shape: each scaled configuration outruns its "
                "peak-comparable GPU on both networks,\n"
                "with ~2x better performance-per-peak efficiency "
                "(Sec. VII-A).\n");
    return 0;
}
