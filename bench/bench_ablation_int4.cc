/**
 * @file
 * Sec. VII-C: switching the 4-bit-PE array from INT8 (bit-serial,
 * 4 passes) to native INT4 (1 pass) should buy roughly 2.33x
 * performance and 2.35x energy efficiency on 4-bit-capable models.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace cq;

int
main()
{
    bench::banner("Sec. VII-C -- INT4 vs INT8 on the 4-bit PE array",
                  "Cambricon-Q, ISCA'21, Sec. VII-C");

    const auto cfg = arch::CambriconQConfig::edge();
    std::printf("%-14s %12s %12s %9s %9s\n", "network", "INT8 (ms)",
                "INT4 (ms)", "speedup", "energy x");
    bench::rule();

    double geo_perf = 1.0, geo_energy = 1.0;
    int count = 0;
    for (const char *which : {"ResNet-18", "GoogLeNet", "SqueezeNet"}) {
        const compiler::WorkloadIR ir =
            std::string(which) == "ResNet-18"
                ? compiler::buildResNet18()
                : (std::string(which) == "GoogLeNet"
                       ? compiler::buildGoogLeNet()
                       : compiler::buildSqueezeNet());
        std::fprintf(stderr, "[int4] %s...\n", which);

        compiler::CodegenOptions o8;
        o8.bits = 8;
        compiler::CodegenOptions o4;
        o4.bits = 4;
        const auto r8 = bench::runCambriconQ(ir, cfg, o8);
        const auto r4 = bench::runCambriconQ(ir, cfg, o4);
        const double s = r8.timeMs / r4.timeMs;
        const double e = r8.energyMj / r4.energyMj;
        geo_perf *= s;
        geo_energy *= e;
        ++count;
        std::printf("%-14s %12.2f %12.2f %8.2fx %8.2fx\n", which,
                    r8.timeMs, r4.timeMs, s, e);
    }
    bench::rule();
    std::printf("%-14s %25s %8.2fx %8.2fx   (paper: 2.33x perf, "
                "2.35x energy)\n",
                "geomean", "", std::pow(geo_perf, 1.0 / count),
                std::pow(geo_energy, 1.0 / count));
    std::printf("\nINT4 quarters the bit-serial passes and halves the "
                "quantized traffic; memory-bound\n"
                "phases cap the end-to-end gain below the 4x compute "
                "peak, landing near the paper's ~2.3x.\n");
    return 0;
}
