/**
 * @file
 * Design-space ablations beyond the paper's figures (DESIGN.md
 * "ours" row): sensitivity of Cambricon-Q's ResNet-18 training step
 * to (1) memory bandwidth, (2) SQU quant-unit width under 4-way
 * E2BQM, and (3) on-chip buffer capacity. These quantify which
 * resources the headline results actually depend on.
 */

#include <cstdio>

#include "bench_util.h"

using namespace cq;

int
main()
{
    bench::banner("Design-space ablation on ResNet-18",
                  "supplementary to Cambricon-Q, ISCA'21");

    const compiler::WorkloadIR ir = compiler::buildResNet18();
    const compiler::WorkloadIR alex = compiler::buildAlexNet();

    std::printf("(1) memory bandwidth scaling (channels)\n");
    std::printf("%-26s %12s %10s %12s %10s\n", "config",
                "ResNet (ms)", "vs 1x", "AlexNet (ms)", "vs 1x");
    bench::rule();
    double base_ms = 0.0, base_alex = 0.0;
    for (unsigned ch : {1u, 2u, 4u}) {
        auto cfg = arch::CambriconQConfig::edge();
        cfg.dram = dram::DramConfig::scaled(ch);
        cfg.name = "CQ @ " + std::to_string(ch) + "x BW";
        std::fprintf(stderr, "[ablation] %s...\n", cfg.name.c_str());
        const auto r = bench::runCambriconQ(ir, cfg);
        const auto ra = bench::runCambriconQ(alex, cfg);
        if (ch == 1) {
            base_ms = r.timeMs;
            base_alex = ra.timeMs;
        }
        std::printf("%-26s %12.2f %9.2fx %12.2f %9.2fx\n",
                    cfg.name.c_str(), r.timeMs, base_ms / r.timeMs,
                    ra.timeMs, base_alex / ra.timeMs);
    }

    std::printf("\n(2) SQU quant width under 4-way E2BQM\n");
    std::printf("%-26s %12s %10s\n", "config", "time (ms)",
                "vs 64 B/cy");
    bench::rule();
    double squ_base = 0.0;
    for (unsigned width : {64u, 32u, 16u}) {
        auto cfg = arch::CambriconQConfig::edge();
        cfg.squQuantBytesPerCycle = width;
        cfg.name = "SQU quant " + std::to_string(width) + " B/cy";
        std::fprintf(stderr, "[ablation] %s...\n", cfg.name.c_str());
        const auto r = bench::runCambriconQ(ir, cfg);
        if (width == 64)
            squ_base = r.timeMs;
        std::printf("%-26s %12.2f %9.2fx\n", cfg.name.c_str(),
                    r.timeMs, r.timeMs / squ_base);
    }

    std::printf("\n(3) on-chip buffer capacity\n");
    std::printf("%-26s %12s %10s\n", "config", "time (ms)",
                "vs 1x");
    bench::rule();
    double buf_base = 0.0;
    for (unsigned scale : {1u, 2u, 4u}) {
        auto cfg = arch::CambriconQConfig::edge();
        cfg.nbinBytes *= scale;
        cfg.sbBytes *= scale;
        cfg.nboutBytes *= scale;
        cfg.name = "buffers x" + std::to_string(scale);
        std::fprintf(stderr, "[ablation] %s...\n", cfg.name.c_str());
        const auto r = bench::runCambriconQ(ir, cfg);
        if (scale == 1)
            buf_base = r.timeMs;
        std::printf("%-26s %12.2f %9.2fx\n", cfg.name.c_str(),
                    r.timeMs, buf_base / r.timeMs);
    }

    bench::rule();
    std::printf("reading: (1) ResNet-18 is compute-bound on the edge "
                "config (extra bandwidth buys ~3%%),\n"
                "while weight-heavy AlexNet gains more -- this is why "
                "the INT4 switch (Sec. VII-C) pays off;\n"
                "(2) the SQU's 64 B/cy quant width keeps 4-way E2BQM "
                "off the critical path, and throttling it\n"
                "surfaces directly as Q-phase time; (3) buffer "
                "capacity beyond the baseline changes tile\n"
                "granularity more than traffic -- gains are marginal "
                "and non-monotonic.\n");
    return 0;
}
