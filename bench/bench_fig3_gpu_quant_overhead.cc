/**
 * @file
 * Fig. 3: on a CPU+GPU platform, statistic-quantized training is
 * *slower* than ordinary FP32/mixed training (1.09x~1.78x in the
 * paper) because the GPU lacks on-the-fly statistic/quantization
 * hardware and must round-trip through the host.
 */

#include <cstdio>

#include "bench_util.h"

using namespace cq;

int
main()
{
    bench::banner("Fig. 3 -- quantized vs FP32 training time on GPU",
                  "Cambricon-Q, ISCA'21, Fig. 3");

    const auto gpu = baseline::GpuSpec::jetsonTx2();
    std::printf("platform: %s (%.2f TFLOPS, %.1f GB/s)\n\n",
                gpu.name.c_str(), gpu.peakTflops, gpu.memBwGBs);
    std::printf("%-14s %14s %14s %10s\n", "network", "FP32 (ms)",
                "quant (ms)", "slowdown");
    bench::rule();

    double min_ratio = 1e9, max_ratio = 0.0;
    for (const auto &ir : compiler::allBenchmarks()) {
        const auto fp32 = baseline::simulateGpu(ir, gpu, false);
        const auto quant = baseline::simulateGpu(ir, gpu, true);
        const double ratio = quant.timeMs / fp32.timeMs;
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
        std::printf("%-14s %14.1f %14.1f %9.2fx\n", ir.name.c_str(),
                    fp32.timeMs, quant.timeMs, ratio);
    }
    bench::rule();
    std::printf("slowdown band: %.2fx .. %.2fx  (paper: 1.09x .. "
                "1.78x)\n",
                min_ratio, max_ratio);
    std::printf("\nthe host round trip per statistic (%.2f ms) and the "
                "extra statistic/quantization kernels\n"
                "erase the benefit of INT8 arithmetic -- the paper's "
                "motivation for hardware support.\n",
                gpu.hostQuantMs);
    return 0;
}
