/**
 * @file
 * Sec. III-A: LDQ compression ratio versus block size (analytic
 * formula and measured storage), and the LDQ-vs-DQ error comparison
 * across gradient-like distributions (the "+0.02% accuracy on
 * average" claim is exercised end-to-end by bench_table8; here we
 * quantify the representation error directly).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "quant/block_quant.h"
#include "tensor/tensor_ops.h"

using namespace cq;

int
main()
{
    bench::banner("Sec. III-A -- LDQ compression ratio and error",
                  "Cambricon-Q, ISCA'21, Sec. III-A");

    const std::size_t n = 1 << 22; // 4M elements

    std::printf("compression ratio vs FP32 (N = %zu)\n", n);
    std::printf("%-12s %12s %12s %14s\n", "block K", "analytic",
                "measured", "loss vs DQ");
    bench::rule();

    Rng rng(42);
    Tensor x({n});
    x.fillGaussian(rng, 0.0f, 0.02f);

    const double dq_ratio = quant::dqCompressionRatio(n);
    for (std::size_t k :
         {std::size_t(64), std::size_t(200), std::size_t(1024),
          std::size_t(4000), std::size_t(16384)}) {
        const auto q = quant::ldqQuantize(x, k, 8);
        const double measured = 4.0 * static_cast<double>(n) /
                                q.storageBytes();
        std::printf("%-12zu %11.4fx %11.4fx %13.4f%%\n", k,
                    quant::ldqCompressionRatio(n, k), measured,
                    100.0 * (1.0 - measured / dq_ratio));
    }
    bench::rule();
    std::printf("paper: K >= 200 keeps the loss < 1%%; K >= 4000 "
                "keeps it < 0.05%%.\n\n");

    // ---- error: LDQ vs layer-wise DQ across distributions ----
    std::printf("reconstruction RMSE, LDQ (K=1024) vs layer-wise DQ, "
                "INT8\n");
    std::printf("%-34s %12s %12s %9s\n", "distribution", "DQ", "LDQ",
                "ratio");
    bench::rule();

    struct Case
    {
        const char *name;
        Tensor data;
    };
    std::vector<Case> cases;
    {
        Tensor t({1 << 16});
        t.fillGaussian(rng, 0.0f, 0.01f);
        cases.push_back({"uniform-scale gaussian", t});
    }
    {
        Tensor t({1 << 16});
        // Per-channel scales spanning 3 orders of magnitude (the
        // layer-to-layer spread of Fig. 2 folded into one tensor).
        for (std::size_t i = 0; i < t.numel(); ++i) {
            const double sigma =
                std::pow(10.0, -3.0 + 3.0 * ((i / 4096) % 16) / 15.0);
            t[i] = static_cast<float>(rng.gaussian(0.0, sigma));
        }
        cases.push_back({"block-varying scales (gradients)", t});
    }
    {
        Tensor t({1 << 16});
        for (std::size_t i = 0; i < t.numel(); ++i)
            t[i] = static_cast<float>(rng.gaussian(0.0, 0.01));
        for (int i = 0; i < 64; ++i)
            t[rng.below(t.numel())] =
                static_cast<float>(rng.gaussian(0.0, 1.0));
        cases.push_back({"long-tail outliers", t});
    }

    for (const auto &c : cases) {
        const double e_dq =
            rmse(c.data, quant::dqQuantize(c.data, 8).dequantize());
        const double e_ldq =
            rmse(c.data, quant::fakeQuantizeLdq(c.data, 1024, 8));
        std::printf("%-34s %12.3e %12.3e %8.2fx\n", c.name, e_dq,
                    e_ldq, e_dq / e_ldq);
    }
    bench::rule();
    std::printf("paper: LDQ error is never worse than layer-wise DQ "
                "(local scale <= global scale),\n"
                "and is decisively better when magnitudes vary within "
                "a tensor.\n");
    return 0;
}
