/**
 * @file
 * Shared helpers for the benchmark workloads: running one workload IR
 * on each platform model (Cambricon-Q configs, TPU, GPU) and
 * condensing the per-platform report.
 */

#ifndef CQ_BENCH_BENCH_UTIL_H
#define CQ_BENCH_BENCH_UTIL_H

// <array> was previously picked up transitively through the arch
// headers; PlatformResult::phaseFrac needs it directly.
#include <array>
#include <cstddef>
#include <string>

#include "arch/accelerator.h"
#include "baseline/gpu_model.h"
#include "baseline/tpu_sim.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"

namespace cq::bench {

/** Condensed result of one platform on one workload. */
struct PlatformResult
{
    std::string platform;
    double timeMs = 0.0;
    double energyMj = 0.0;
    /** Phase fractions in Fig. 12(b) order FW/NG/WG/WU/S/Q. */
    std::array<double, arch::kNumPhases> phaseFrac{};
    /** Energy split (Fig. 12(d)): ACC / BUF / DDR-SB / DDR-DY. */
    double accMj = 0.0, bufMj = 0.0, ddrSbMj = 0.0, ddrDyMj = 0.0;
};

inline PlatformResult
fromPerfReport(const arch::PerfReport &r)
{
    PlatformResult out;
    out.platform = r.configName;
    out.timeMs = r.timeMs();
    out.energyMj = r.energyMj();
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        out.phaseFrac[p] =
            r.phaseFraction(static_cast<arch::Phase>(p));
    out.accMj = (r.energy.accPj + r.energy.chipStaticPj) * 1e-9;
    out.bufMj = r.energy.bufPj * 1e-9;
    out.ddrSbMj = r.energy.ddrStandbyPj * 1e-9;
    out.ddrDyMj = r.energy.ddrDynamicPj * 1e-9;
    return out;
}

/** Run on a Cambricon-Q-family configuration. */
inline PlatformResult
runCambriconQ(const compiler::WorkloadIR &ir,
              const arch::CambriconQConfig &cfg,
              const compiler::CodegenOptions &opts = {})
{
    arch::Accelerator acc(cfg);
    return fromPerfReport(
        acc.run(compiler::generateProgram(ir, cfg, opts)));
}

/** Run on the TPU baseline. */
inline PlatformResult
runTpu(const compiler::WorkloadIR &ir,
       const compiler::CodegenOptions &opts = {})
{
    return fromPerfReport(baseline::simulateTpu(ir, opts));
}

/** Run on a GPU model. */
inline PlatformResult
runGpu(const compiler::WorkloadIR &ir, const baseline::GpuSpec &gpu,
       bool quantized)
{
    const auto r = baseline::simulateGpu(ir, gpu, quantized);
    PlatformResult out;
    out.platform = gpu.name + (quantized ? " (quant)" : " (FP32)");
    out.timeMs = r.timeMs;
    out.energyMj = r.energyMj;
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        out.phaseFrac[p] =
            r.phaseFraction(static_cast<arch::Phase>(p));
    return out;
}

} // namespace cq::bench

#endif // CQ_BENCH_BENCH_UTIL_H
