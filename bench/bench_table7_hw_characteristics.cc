/**
 * @file
 * Table VII: area and power of every Cambricon-Q module at 45 nm.
 * The area/power model replaces the paper's Synopsys flow; this
 * harness prints the modeled values, the percentage shares, and the
 * derived claims of Sec. VI-A (extra area/power of the quantization
 * support, NDP engine cost).
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace cq;

int
main()
{
    bench::banner("Table VII -- hardware characteristics (45 nm)",
                  "Cambricon-Q, ISCA'21, Table VII + Sec. VI-A");

    const auto hw = energy::HwCharacteristics::cambriconQ();

    std::printf("%-22s %10s %7s %12s %7s\n", "module", "area (mm^2)",
                "(%)", "power (mW)", "(%)");
    bench::rule();
    std::printf("%-22s %10.2f %7s %12.2f %7s\n", "Acceleration Core",
                hw.coreAreaMm2(), "100", hw.corePowerMw(), "100");
    for (const auto &m : hw.coreModules) {
        std::printf("  %-20s %10.2f %7.2f %12.2f %7.2f\n",
                    m.name.c_str(), m.areaMm2,
                    100.0 * m.areaMm2 / hw.coreAreaMm2(), m.powerMw,
                    100.0 * m.powerMw / hw.corePowerMw());
    }
    std::printf("%-22s %10.2f %7s %12.2f %7s\n", "NDP Engine",
                hw.ndpAreaMm2(), "100", hw.ndpPowerMw(), "100");
    for (const auto &m : hw.ndpModules) {
        std::printf("  %-20s %10.2f %7.2f %12.2f %7.2f\n",
                    m.name.c_str(), m.areaMm2,
                    100.0 * m.areaMm2 / hw.ndpAreaMm2(), m.powerMw,
                    100.0 * m.powerMw / hw.ndpPowerMw());
    }
    bench::rule();

    // Sec. VI-A derived claims: quantization support costs only
    // 5.87% extra area (0.51 mm^2) / 13.95% extra power (124.36 mW).
    double q_area = 0.0, q_power = 0.0;
    for (const auto &m : hw.coreModules) {
        if (m.name == "SQU" || m.name == "QBC") {
            q_area += m.areaMm2;
            q_power += m.powerMw;
        }
    }
    std::printf("quantization support (SQU+QBC): %.2f mm^2 (%.2f%% of "
                "core; paper 5.87%%),\n"
                "  %.2f mW (%.2f%% of core; paper 13.95%%)\n",
                q_area, 100.0 * q_area / hw.coreAreaMm2(), q_power,
                100.0 * q_power / hw.corePowerMw());
    std::printf("NDP engine: %.2f mm^2, %.2f mW "
                "(paper: 0.49 mm^2, 138.94 mW; NDPO alone 0.07 mm^2)\n",
                hw.ndpAreaMm2(), hw.ndpPowerMw());
    return 0;
}
