/**
 * @file
 * Fault-resilience sweep: final accuracy of a quantized (HQT) training
 * run vs DRAM bit-flip rate, with the guardrail/rollback subsystem on
 * and off (DESIGN.md §5, EXPERIMENTS.md "Fault sweep").
 *
 * Faults target the FP32 master weights — the state Cambricon-Q keeps
 * resident in DRAM for the whole run, which is exactly the state a
 * memory upset would silently poison. The guarded column checkpoints
 * every 10 steps and rolls back when a guard trips; the unguarded
 * column is the same trainer with the resilience subsystem disabled.
 *
 * Usage: bench_fault_resilience [--smoke]
 *   --smoke  two rates, fewer steps (CI wiring check, a few seconds)
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/quant_trainer.h"
#include "sim/faults/fault_injector.h"

using namespace cq;

namespace {

nn::Network
makeMlp(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));
    return net;
}

struct SweepPoint
{
    double accuracyPct = 0.0;
    double finalLoss = 0.0;
    std::size_t rollbacks = 0;
    double trips = 0.0;
    double bitsFlipped = 0.0;
    bool diverged = false;
};

SweepPoint
run(double rate, bool guardrails, int steps, const std::string &ckpt)
{
    nn::SpiralDataset data(2, 0.1, 17);
    nn::Network net = makeMlp(18);

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    cfg.resilience.enabled = guardrails;
    cfg.resilience.checkpointPath = guardrails ? ckpt : "";
    cfg.resilience.checkpointInterval = 10;
    nn::QuantTrainer trainer(net, cfg);

    sim::FaultConfig fcfg;
    fcfg.seed = 0xFA117;
    fcfg.bitFlipsPerMbit = rate;
    fcfg.burstLength = 2;
    fcfg.targetMasterWeights = true;
    sim::FaultInjector inj(fcfg);
    if (rate > 0.0)
        trainer.setFaultInjector(&inj);

    SweepPoint p;
    for (int i = 0; i < steps; ++i) {
        const auto b = data.sample(64);
        p.finalLoss = trainer.stepClassification(b.inputs, b.labels);
        if (!std::isfinite(p.finalLoss))
            p.diverged = true;
    }
    const auto eval = data.evalSet(256);
    p.accuracyPct =
        100.0 * trainer.evalAccuracy(eval.inputs, eval.labels);
    p.rollbacks = trainer.rollbackCount();
    const StatGroup stats = trainer.resilienceStats();
    p.trips = stats.get("guard.breakerTrips") +
              stats.get("guard.watchdogTrips");
    p.bitsFlipped = stats.get("faults.bitsFlipped");
    if (!std::isfinite(p.accuracyPct))
        p.diverged = true;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const int steps = smoke ? 60 : 200;
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 2000.0}
              : std::vector<double>{0.0, 10.0, 100.0, 500.0, 1000.0,
                                    2000.0, 4000.0, 8000.0};
    const std::string ckpt = "/tmp/cq_bench_fault_resilience.ckpt";

    std::printf("Fault resilience sweep: spiral MLP, Zhang-2020+HQT, "
                "%d steps, faults on master weights\n\n",
                steps);
    std::printf("%12s | %26s | %26s\n", "",
                "guardrails + rollback", "unprotected");
    std::printf("%12s | %8s %6s %4s %5s | %8s %9s\n",
                "flips/Mbit", "acc%", "loss", "rb", "trips", "acc%",
                "loss");
    std::printf("-------------+----------------------------+----------"
                "-----------------\n");
    for (const double rate : rates) {
        const SweepPoint on = run(rate, true, steps, ckpt);
        const SweepPoint off = run(rate, false, steps, ckpt);
        char offLoss[32];
        if (off.diverged)
            std::snprintf(offLoss, sizeof offLoss, "diverged");
        else
            std::snprintf(offLoss, sizeof offLoss, "%9.3f",
                          off.finalLoss);
        std::printf("%12.0f | %7.1f%% %6.3f %4zu %5.0f | %7.1f%% %9s\n",
                    rate, on.accuracyPct, on.finalLoss, on.rollbacks,
                    on.trips, off.accuracyPct, offLoss);
    }
    std::printf("\nrb = rollbacks to the last CRC-verified checkpoint; "
                "trips = breaker + watchdog trips.\n");
    std::remove(ckpt.c_str());
    return 0;
}
