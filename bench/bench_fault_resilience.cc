/**
 * @file
 * Fault-resilience sweep: final accuracy of a quantized (HQT) training
 * run vs DRAM bit-flip rate under three protection levels
 * (DESIGN.md §5, EXPERIMENTS.md "Fault sweep"):
 *
 *   unprotected   - no monitoring, faults land on bare FP32 masters
 *   rollback-only - PR 2 guardrails + CRC checkpoints (detect/recover)
 *   ECC+ABFT      - PR 3 in-situ correction: SEC-DED Hamming(72,64)
 *                   over the masters (faults land post-encode, on the
 *                   coded words) with a background scrubber, plus the
 *                   rollback ladder underneath for double-bit escapes
 *
 * Faults target the FP32 master weights — the state Cambricon-Q keeps
 * resident in DRAM for the whole run. The injected data-bit rate is
 * matched across arms: the coded surface is 72/64 larger and the
 * uniform draw puts 64/72 of the flips in data bits, so the same
 * flips/Mbit figure stresses all three arms equally. Burst length is 1
 * (classic single-event upsets, the fault class SEC-DED is sized for).
 *
 * A second sweep targets the PE-array accumulators (compute faults,
 * which no memory ECC can see) and compares guardrails alone against
 * guardrails + ABFT checksum verification with retry.
 *
 * Usage: bench_fault_resilience [--smoke]
 *   --smoke  fewer rates and steps + a stats dump (CI wiring check)
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation.h"
#include "nn/datasets.h"
#include "nn/linear.h"
#include "nn/quant_trainer.h"
#include "sim/faults/fault_injector.h"

using namespace cq;

namespace {

enum class Arm
{
    Unprotected,
    RollbackOnly,
    EccAbft,
    GuardedCompute,     ///< accumulator faults, guardrails only
    GuardedComputeAbft, ///< accumulator faults, guardrails + ABFT
};

nn::Network
makeMlp(std::uint64_t seed)
{
    Rng rng(seed);
    nn::Network net;
    net.add(std::make_unique<nn::Linear>("fc1", 2, 32, rng));
    net.add(std::make_unique<nn::Activation>("t", nn::ActKind::Tanh));
    net.add(std::make_unique<nn::Linear>("fc2", 32, 2, rng));
    return net;
}

struct SweepPoint
{
    double accuracyPct = 0.0;
    double finalLoss = 0.0;
    std::size_t rollbacks = 0;
    double trips = 0.0;
    bool diverged = false;
    StatGroup stats;
};

SweepPoint
run(double rate, Arm arm, int steps, const std::string &ckpt)
{
    nn::SpiralDataset data(2, 0.1, 17);
    nn::Network net = makeMlp(18);

    nn::QuantTrainerConfig cfg;
    cfg.algorithm = quant::AlgorithmConfig::zhang2020Hqt(64);
    cfg.optimizer.kind = nn::OptimizerKind::Adam;
    cfg.optimizer.lr = 5e-3;
    cfg.resilience.enabled = arm != Arm::Unprotected;
    cfg.resilience.checkpointPath =
        arm != Arm::Unprotected ? ckpt : "";
    cfg.resilience.checkpointInterval = 10;
    if (arm == Arm::EccAbft) {
        cfg.resilience.ecc.enabled = true;
        cfg.resilience.ecc.scrubWordsPerStep = 16;
        cfg.resilience.abft.enabled = true;
    }
    if (arm == Arm::GuardedComputeAbft)
        cfg.resilience.abft.enabled = true;
    nn::QuantTrainer trainer(net, cfg);

    sim::FaultConfig fcfg;
    fcfg.seed = 0xBEEF;
    fcfg.bitFlipsPerMbit = rate;
    fcfg.burstLength = 1;
    const bool compute_arm = arm == Arm::GuardedCompute ||
                             arm == Arm::GuardedComputeAbft;
    fcfg.targetMasterWeights = !compute_arm;
    fcfg.targetAccumulators = compute_arm;
    sim::FaultInjector inj(fcfg);
    if (rate > 0.0)
        trainer.setFaultInjector(&inj);

    SweepPoint p;
    for (int i = 0; i < steps; ++i) {
        const auto b = data.sample(64);
        p.finalLoss = trainer.stepClassification(b.inputs, b.labels);
        if (!std::isfinite(p.finalLoss))
            p.diverged = true;
    }
    const auto eval = data.evalSet(256);
    p.accuracyPct =
        100.0 * trainer.evalAccuracy(eval.inputs, eval.labels);
    p.rollbacks = trainer.rollbackCount();
    p.stats = trainer.resilienceStats();
    p.trips = p.stats.get("guard.breakerTrips") +
              p.stats.get("guard.watchdogTrips");
    if (!std::isfinite(p.accuracyPct))
        p.diverged = true;
    return p;
}

void
printAcc(const SweepPoint &p)
{
    if (p.diverged)
        std::printf(" %7s", "div");
    else
        std::printf(" %6.1f%%", p.accuracyPct);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const int steps = smoke ? 60 : 200;
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 100.0}
              : std::vector<double>{0.0, 10.0, 100.0, 500.0, 1000.0,
                                    2000.0, 4000.0};
    const std::vector<double> acc_rates =
        smoke ? std::vector<double>{10.0}
              : std::vector<double>{2.0, 10.0, 50.0};
    const std::string ckpt = "/tmp/cq_bench_fault_resilience.ckpt";

    std::printf("Fault resilience sweep: spiral MLP, Zhang-2020+HQT, "
                "%d steps\n",
                steps);
    std::printf("DRAM faults on master weights (burst 1, post-encode "
                "for the ECC arm)\n\n");
    std::printf("%10s | %11s | %16s | %30s\n", "", "unprotected",
                "rollback-only", "ECC+ABFT");
    std::printf("%10s | %7s %3s | %7s %4s %3s | %7s %4s %6s %5s %3s\n",
                "flips/Mbit", "acc%", "", "acc%", "rb", "", "acc%",
                "rb", "corr", "unc", "");
    std::printf("-----------+-------------+------------------+--------"
                "-----------------------\n");
    for (const double rate : rates) {
        const SweepPoint un = run(rate, Arm::Unprotected, steps, ckpt);
        const SweepPoint rb = run(rate, Arm::RollbackOnly, steps, ckpt);
        const SweepPoint ea = run(rate, Arm::EccAbft, steps, ckpt);
        std::printf("%10.0f |", rate);
        printAcc(un);
        std::printf("     |");
        printAcc(rb);
        std::printf(" %4zu     |", rb.rollbacks);
        printAcc(ea);
        std::printf(" %4zu %6.0f %5.0f\n", ea.rollbacks,
                    ea.stats.get("ecc.corrected"),
                    ea.stats.get("ecc.uncorrectable"));
        if (smoke && rate > 0.0) {
            std::printf("\n%s\n",
                        ea.stats
                            .dump("ECC+ABFT resilience counters "
                                  "(smoke)")
                            .c_str());
        }
    }
    std::printf("\nrb = rollbacks to the last CRC-verified checkpoint; "
                "corr/unc = SEC-DED\nsingle-bit corrections / "
                "double-bit detections over the run.\n");

    std::printf("\nCompute faults on PE-array accumulators (no memory "
                "ECC can reach these)\n\n");
    std::printf("%10s | %16s | %28s\n", "", "guardrails only",
                "guardrails + ABFT");
    std::printf("%10s | %7s %4s %3s | %7s %4s %6s %4s\n", "flips/Mbit",
                "acc%", "rb", "", "acc%", "rb", "corr", "esc");
    std::printf("-----------+------------------+---------------------"
                "--------\n");
    for (const double rate : acc_rates) {
        const SweepPoint gd = run(rate, Arm::GuardedCompute, steps,
                                  ckpt);
        const SweepPoint ga = run(rate, Arm::GuardedComputeAbft, steps,
                                  ckpt);
        std::printf("%10.0f |", rate);
        printAcc(gd);
        std::printf(" %4zu     |", gd.rollbacks);
        printAcc(ga);
        std::printf(" %4zu %6.0f %4.0f\n", ga.rollbacks,
                    ga.stats.get("abft.corrected"),
                    ga.stats.get("abft.escalations"));
        if (smoke) {
            std::printf("\n%s\n",
                        ga.stats
                            .dump("ABFT compute-fault counters "
                                  "(smoke)")
                            .c_str());
        }
    }
    std::printf("\ncorr = GEMMs repaired by checksum-guided recompute; "
                "esc = mismatches that\nsurvived the retry and "
                "escalated to step discard + rollback.\n");
    std::remove(ckpt.c_str());
    return 0;
}
