/**
 * @file
 * cq_bench: the unified benchmark harness. All former bench_* mains
 * are registered workloads; see bench/harness/ for the machinery and
 * `cq_bench --help` / EXPERIMENTS.md for usage.
 */

#include "harness/harness.h"

int
main(int argc, char **argv)
{
    return cq::bench::benchMain(argc, argv);
}
