/**
 * @file
 * cqsim: the command-line front end of the Cambricon-Q simulator.
 *
 * Lowers one of the Table VI workloads (or a custom GEMM) to an
 * instruction stream for the selected target and simulates one
 * training minibatch, printing time, energy, phase/unit breakdowns
 * and (optionally) the per-instruction trace or disassembly.
 *
 * A third mode actually trains: --train spiral runs the quantized
 * spiral-MLP workload under the crash-consistent generation store,
 * with elastic resume (--resume) and clean SIGTERM/SIGINT shutdown
 * (final synchronous checkpoint, then exit 0). Adding --chips N
 * (N >= 2) switches the same task to the N-chip data-parallel
 * trainer (src/dist): LDQ-quantized ring all-reduce over the modeled
 * interconnect, with optional planned faults --chip-fail C@S
 * (chip C crashes at step S) and --straggler C@S (chip C turns
 * persistent straggler from step S); survivors rebalance and finish.
 *
 * Usage:
 *   cqsim --network resnet18 [--target cq|cq-nondp|cq-t|cq-v|tpu]
 *         [--bits 4|8|12|16] [--optimizer sgd|adagrad|rmsprop|adam]
 *         [--batch N] [--stats] [--disasm N] [--trace]
 *   cqsim --gemm m,n,k [--target ...] [--bits ...]
 *   cqsim --train spiral [--steps N] [--seed S] [--ckpt-dir D]
 *         [--ckpt-every N] [--ckpt-keep K] [--resume D]
 *         [--sync-ckpt] [--masters-out F]
 *
 * Observability (all modes): --trace-out F writes a Chrome
 * trace-event JSON (host spans in --train mode, per-unit simulated
 * timelines in --network/--gemm mode); --metrics-out F writes a
 * Prometheus text snapshot. --train additionally takes
 * --telemetry-out F (one JSONL record per step), --metrics-every N
 * (periodic metrics rewrite) and the in-situ correction knobs
 * --ecc, --abft and --fault-rate FLIPS_PER_MBIT.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/accelerator.h"
#include "arch/trace_export.h"
#include "baseline/tpu_sim.h"
#include "common/argparse.h"
#include "common/failpoint.h"
#include "common/signal_flag.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"
#include "common/json.h"
#include "dist/dist_harness.h"
#include "nn/guard/crash_harness.h"
#include "obs/jsonw.h"
#include "obs/metrics.h"
#include "obs/obs_server.h"
#include "obs/trace.h"
#include "serve/report.h"
#include "serve/scheduler.h"

using namespace cq;

namespace {

constexpr const char *kProg = "cqsim";

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: cqsim --network "
        "<alexnet|resnet18|googlenet|squeezenet|transformer|lstm|tiny>\n"
        "             [--target cq|cq-nondp|cq-t|cq-v|tpu] [--bits B]\n"
        "             [--optimizer sgd|adagrad|rmsprop|adam] "
        "[--batch N]\n"
        "             [--stats] [--disasm N] [--trace]\n"
        "       cqsim --gemm m,n,k [options]\n"
        "       cqsim --train spiral [--steps N] [--seed S]\n"
        "             [--ckpt-dir D] [--ckpt-every N] [--ckpt-keep "
        "K]\n"
        "             [--resume D] [--sync-ckpt] [--masters-out F]\n"
        "             [--ecc] [--abft] [--fault-rate R]\n"
        "             [--telemetry-out F] [--metrics-every N]\n"
        "             [--chips N] [--chip-fail C@S] "
        "[--straggler C@S]\n"
        "       cqsim --serve jobs.json [--serve-workers N]\n"
        "             [--serve-queue-cap N] [--serve-report F]\n"
        "observability (all modes):\n"
        "             [--trace-out F] [--metrics-out F]\n"
        "             [--obs-port P]       live scrape endpoint on "
        "127.0.0.1:P (0 = ephemeral);\n"
        "                                  serves /metrics "
        "/metrics.json /healthz /jobs /trace\n"
        "             [--job-trace-dir D]  (--serve) per-job Perfetto "
        "traces in D\n"
        "fault injection (all modes):\n"
        "             [--failpoints SPEC]   "
        "e.g. \"ckpt.body.write=enospc,once=1\"\n"
        "             (also via CQ_FAILPOINTS; see "
        "common/failpoint.h)\n");
}

void
usage()
{
    printUsage(stderr);
    std::exit(2);
}

/** Strict parses shared with the other tools (common/argparse.h). */
std::uint64_t
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t lo, std::uint64_t hi)
{
    return args::parseU64(kProg, flag, text, lo, hi);
}

/** The --train mode: real quantized training with the generation
 *  store, elastic resume and clean signal shutdown. */
struct TrainArgs
{
    std::string task;
    std::uint64_t steps = 60;
    std::uint64_t seed = 17;
    std::string ckptDir;
    std::uint64_t ckptEvery = 5;
    std::uint64_t ckptKeep = 3;
    std::string resumeDir;
    bool syncCkpt = false;
    std::string mastersOut;
    bool ecc = false;
    bool abft = false;
    double faultRate = 0.0;
    std::string telemetryOut;
    std::uint64_t metricsEvery = 0;

    // Distributed leg (--chips >= 2 routes to src/dist).
    std::uint64_t chips = 1;
    std::string chipFail;  // "C@S": chip C crashes at step S
    std::string straggler; // "C@S": chip C straggles from step S
};

/** The live observability plane (--obs-port). */
struct ObsPlaneArgs
{
    /** -1 = off; 0 = ephemeral (the bound port is printed). */
    int port = -1;
    /** --serve only: per-job trace file directory. */
    std::string jobTraceDir;

    bool enabled() const { return port >= 0; }
};

/**
 * Pre-create the stable metric families, so a scrape that arrives
 * before the first training step already sees every series a
 * dashboard would alert on (Prometheus treats a missing series as
 * "no data", not zero).
 */
void
touchScrapeFamilies()
{
    auto &reg = obs::MetricRegistry::instance();
    reg.counter("trainer.steps");
    reg.gauge("trainer.loss");
    reg.histogram("trainer.step_time_us");
    reg.histogram("dist.allreduce_latency_us");
    reg.counter("serve.submitted");
    reg.counter("serve.accepted");
    reg.counter("serve.completed");
}

/** Start the scrape server; prints the bound port (tests and the CI
 *  observability job parse the "obs:" line). */
bool
startObsServer(obs::ObsServer &server, obs::ObsServerConfig cfg,
               int port)
{
    touchScrapeFamilies();
    cfg.port = port;
    if (!server.start(std::move(cfg))) {
        std::fprintf(stderr, "cqsim: --obs-port %d unavailable\n",
                     port);
        return false;
    }
    std::printf("obs:       serving on port %d (/metrics "
                "/metrics.json /healthz /jobs /trace)\n",
                server.port());
    std::fflush(stdout);
    return true;
}

/** /healthz component reading the trainer.* registry families. */
std::string
trainerHealthJson()
{
    auto &reg = obs::MetricRegistry::instance();
    std::string out = "{\"steps\":";
    out += std::to_string(static_cast<std::uint64_t>(
        reg.counter("trainer.steps").value()));
    out += ",\"loss\":";
    obs::appendJsonNumber(out, reg.gauge("trainer.loss").value());
    out += '}';
    return out;
}

/** Parse a "C@S" planned-fault spec (chip index @ global step). */
bool
parseChipAtStep(const std::string &flag, const std::string &text,
                std::size_t chips, std::size_t &chip,
                std::uint64_t &step)
{
    unsigned long long c = 0, s = 0;
    char tail = '\0';
    if (std::sscanf(text.c_str(), "%llu@%llu%c", &c, &s, &tail) != 2 ||
        s == 0) {
        std::fprintf(stderr,
                     "cqsim: bad %s spec '%s' (want CHIP@STEP with "
                     "STEP >= 1)\n",
                     flag.c_str(), text.c_str());
        return false;
    }
    if (c >= chips) {
        std::fprintf(stderr,
                     "cqsim: %s chip %llu out of range (have %zu "
                     "chips)\n",
                     flag.c_str(), c, chips);
        return false;
    }
    chip = static_cast<std::size_t>(c);
    step = s;
    return true;
}

/** The --train ... --chips N leg: N-chip data-parallel training with
 *  LDQ-quantized ring all-reduce and optional planned chip faults. */
int
runTrainDist(const TrainArgs &a, const std::string &traceOut,
             const std::string &metricsOut, const ObsPlaneArgs &obsArgs)
{
    dist::DistHarnessConfig cfg;
    cfg.seed = a.seed;
    cfg.chips = static_cast<std::size_t>(a.chips);
    cfg.steps = a.steps;
    cfg.link.corruptFlipsPerMbit = a.faultRate;
    cfg.ckptRoot = a.ckptDir.empty() ? a.resumeDir : a.ckptDir;
    cfg.ckptEvery = a.ckptDir.empty() ? 0 : a.ckptEvery;
    cfg.resume = !a.resumeDir.empty();
    cfg.resumeRoot = a.resumeDir;

    cfg.faults.resize(cfg.chips);
    if (!a.chipFail.empty()) {
        std::size_t chip = 0;
        std::uint64_t step = 0;
        if (!parseChipAtStep("--chip-fail", a.chipFail, cfg.chips,
                             chip, step))
            return 2;
        cfg.faults[chip].crashAtStep = step;
    }
    if (!a.straggler.empty()) {
        std::size_t chip = 0;
        std::uint64_t step = 0;
        if (!parseChipAtStep("--straggler", a.straggler, cfg.chips,
                             chip, step))
            return 2;
        cfg.faults[chip].stragglerFromStep = step;
    }

    // Tracing feeds both --trace-out and the live /trace endpoint;
    // per-chip contexts land the spans on pid-3 "chip-N" tracks.
    if (!traceOut.empty() || obsArgs.enabled())
        obs::TraceSession::instance().setEnabled(true);
    obs::ObsServer obsServer;
    if (obsArgs.enabled()) {
        obs::ObsServerConfig ocfg;
        const std::size_t chipsTotal =
            static_cast<std::size_t>(a.chips);
        ocfg.health.emplace_back("trainer", trainerHealthJson);
        ocfg.health.emplace_back("dist", [chipsTotal] {
            auto &reg = obs::MetricRegistry::instance();
            std::string out = "{\"chips_alive\":";
            out += std::to_string(static_cast<std::uint64_t>(
                reg.gauge("dist.chips_alive").value()));
            out += ",\"chips_total\":";
            out += std::to_string(chipsTotal);
            out += ",\"step\":";
            out += std::to_string(static_cast<std::uint64_t>(
                reg.gauge("dist.step").value()));
            out += '}';
            return out;
        });
        if (!startObsServer(obsServer, std::move(ocfg), obsArgs.port))
            return 2;
    }

    std::printf("dist:      spiral MLP on %llu chips, steps %llu, "
                "seed %llu\n",
                static_cast<unsigned long long>(a.chips),
                static_cast<unsigned long long>(a.steps),
                static_cast<unsigned long long>(a.seed));
    if (!cfg.ckptRoot.empty()) {
        if (cfg.ckptEvery > 0)
            std::printf("ckpt:      root %s, wave every %llu steps\n",
                        cfg.ckptRoot.c_str(),
                        static_cast<unsigned long long>(
                            cfg.ckptEvery));
        else
            std::printf("ckpt:      root %s, final wave only\n",
                        cfg.ckptRoot.c_str());
    }

    const dist::DistHarnessResult r = dist::runDistHarness(cfg);
    const dist::DistTrainerResult &t = r.train;

    if (cfg.resume) {
        if (t.resumed)
            std::printf("resume:    global step %llu restored onto "
                        "%llu chips\n",
                        static_cast<unsigned long long>(t.resumedStep),
                        static_cast<unsigned long long>(a.chips));
        else
            std::printf("resume:    cold start (no usable shard "
                        "snapshot in %s)\n",
                        a.resumeDir.c_str());
    }
    for (const dist::ChipFailureEvent &ev : t.failures)
        std::printf("failure:   chip %zu %s at step %llu (survivors "
                    "rebalanced)\n",
                    ev.chip, dist::chipFailureName(ev.kind),
                    static_cast<unsigned long long>(ev.step));
    std::printf("result:    %llu/%llu steps committed, %zu/%llu "
                "chips survived, final loss %.6f, masters crc %08x "
                "(%s)\n",
                static_cast<unsigned long long>(t.stepsCompleted),
                static_cast<unsigned long long>(a.steps),
                t.survivors,
                static_cast<unsigned long long>(a.chips), t.finalLoss,
                t.mastersCrc,
                t.replicasIdentical ? "replicas identical"
                                    : "REPLICA DIVERGENCE");
    std::printf("wire:      %llu bytes on wire (fp32 would be %llu, "
                "%.2fx), %llu retransmits, %.1f ms simulated\n",
                static_cast<unsigned long long>(t.bytesOnWire),
                static_cast<unsigned long long>(t.fp32Bytes),
                t.bytesOnWire > 0
                    ? static_cast<double>(t.fp32Bytes) /
                          static_cast<double>(t.bytesOnWire)
                    : 0.0,
                static_cast<unsigned long long>(t.retransmits),
                t.simUs / 1000.0);
    std::printf("accuracy:  %.4f on the held-out spiral set\n",
                r.accuracy);

    obsServer.stop();
    if (!traceOut.empty()) {
        if (obs::TraceSession::instance().writeChromeTrace(traceOut))
            std::printf("trace:     %s (chrome://tracing, per-chip "
                        "tracks)\n",
                        traceOut.c_str());
    }
    if (!metricsOut.empty())
        obs::MetricRegistry::instance().writeProm(metricsOut, {});

    if (!t.replicasIdentical)
        return 1;
    return t.survivors > 0 ? 0 : 1;
}

int
runTrain(const TrainArgs &a, const std::string &traceOut,
         const std::string &metricsOut, const ObsPlaneArgs &obsArgs)
{
    if (a.task != "spiral") {
        std::fprintf(stderr,
                     "cqsim: unknown --train task '%s' (supported: "
                     "spiral)\n",
                     a.task.c_str());
        return 2;
    }
    if (a.chips >= 2)
        return runTrainDist(a, traceOut, metricsOut, obsArgs);
    if (!a.chipFail.empty() || !a.straggler.empty()) {
        std::fprintf(stderr, "cqsim: --chip-fail/--straggler need "
                             "--chips >= 2\n");
        return 2;
    }
    // A live scrape port counts as an output: the run is observable
    // even if nothing lands on disk.
    if (a.ckptDir.empty() && a.resumeDir.empty() &&
        a.mastersOut.empty() && traceOut.empty() &&
        metricsOut.empty() && a.telemetryOut.empty() &&
        !obsArgs.enabled()) {
        std::fprintf(stderr,
                     "cqsim: --train needs --ckpt-dir, --resume, "
                     "--masters-out, --obs-port or an observability "
                     "output (nothing would be persisted)\n");
        return 2;
    }

    nn::guard::CrashHarnessConfig cfg;
    cfg.seed = a.seed;
    cfg.steps = a.steps;
    cfg.dir = a.ckptDir.empty() ? a.resumeDir : a.ckptDir;
    cfg.ckptEvery = a.ckptEvery;
    cfg.ckptKeep = static_cast<std::size_t>(a.ckptKeep);
    cfg.asyncCheckpoint = !a.syncCkpt;
    cfg.resume = !a.resumeDir.empty();
    cfg.resumeDir = a.resumeDir;
    cfg.handleSignals = true;
    cfg.mastersOut = a.mastersOut;
    cfg.ecc = a.ecc;
    cfg.abft = a.abft;
    cfg.faultFlipsPerMbit = a.faultRate;
    cfg.traceOut = traceOut;
    cfg.metricsOut = metricsOut;
    cfg.telemetryOut = a.telemetryOut;
    cfg.metricsEvery = a.metricsEvery;

    installShutdownSignalHandler();

    if (obsArgs.enabled())
        obs::TraceSession::instance().setEnabled(true);
    obs::ObsServer obsServer;
    if (obsArgs.enabled()) {
        obs::ObsServerConfig ocfg;
        // Train-mode /metrics exposes the typed registry families
        // only: the trainer's StatGroups are not thread-safe to
        // snapshot mid-run, so they stay in the end-of-run dumps.
        ocfg.health.emplace_back("trainer", trainerHealthJson);
        if (!startObsServer(obsServer, std::move(ocfg), obsArgs.port))
            return 2;
    }

    std::printf("train:     spiral MLP, steps %llu, seed %llu\n",
                static_cast<unsigned long long>(a.steps),
                static_cast<unsigned long long>(a.seed));
    if (!cfg.dir.empty())
        std::printf("ckpt:      dir %s, every %llu, keep %llu, %s\n",
                    cfg.dir.c_str(),
                    static_cast<unsigned long long>(a.ckptEvery),
                    static_cast<unsigned long long>(a.ckptKeep),
                    cfg.asyncCheckpoint ? "async" : "sync");
    if (!traceOut.empty() || !metricsOut.empty() ||
        !a.telemetryOut.empty())
        std::printf("obs:       trace %s, metrics %s, telemetry %s\n",
                    traceOut.empty() ? "-" : traceOut.c_str(),
                    metricsOut.empty() ? "-" : metricsOut.c_str(),
                    a.telemetryOut.empty() ? "-"
                                           : a.telemetryOut.c_str());

    const auto r = nn::guard::runCrashHarness(cfg);

    if (cfg.resume) {
        if (r.resumed)
            std::printf("resume:    generation %llu at step %llu "
                        "(%llu corrupt generations skipped)\n",
                        static_cast<unsigned long long>(
                            r.resumedGeneration),
                        static_cast<unsigned long long>(
                            r.resumedStep),
                        static_cast<unsigned long long>(
                            r.skippedCorrupt));
        else
            std::printf("resume:    cold start (no usable "
                        "generation in %s)\n",
                        a.resumeDir.c_str());
    }
    std::printf("result:    %llu steps run, final loss %.6f, "
                "masters crc %08x\n",
                static_cast<unsigned long long>(r.stepsRun),
                r.finalLoss, r.mastersCrc);
    if (r.stopRequested)
        std::printf("shutdown:  signal handled; final checkpoint "
                    "committed before exit\n");
    return 0;
}

/** The --serve mode: run a job file through the multi-tenant
 *  scheduler (src/serve/). SIGTERM/SIGINT drains gracefully — running
 *  jobs stop at their next checkpoint-clean step boundary — and a
 *  second signal exits immediately (common/signal_flag.cc). */
struct ServeArgs
{
    std::string jobsPath;
    std::uint64_t workers = 0;  // 0 = job-file / default
    std::uint64_t queueCap = 0; // 0 = job-file / default
    std::string reportOut;
};

bool
parseServeJob(const json::Value &v, serve::JobSpec &spec,
              std::string &err)
{
    if (!v.isObject()) {
        err = "job entry is not an object";
        return false;
    }
    spec.id = v.stringOr("id", "");
    spec.tenant = v.stringOr("tenant", "default");
    const std::string kind = v.stringOr("kind", "train");
    if (kind == "train")
        spec.kind = serve::JobKind::Train;
    else if (kind == "sweep")
        spec.kind = serve::JobKind::Sweep;
    else if (kind == "sim")
        spec.kind = serve::JobKind::Sim;
    else if (kind == "train_dist")
        spec.kind = serve::JobKind::TrainDist;
    else {
        err = "unknown kind '" + kind + "'";
        return false;
    }
    const std::string prio = v.stringOr("priority", "normal");
    if (prio == "low")
        spec.priority = serve::Priority::Low;
    else if (prio == "normal")
        spec.priority = serve::Priority::Normal;
    else if (prio == "high")
        spec.priority = serve::Priority::High;
    else {
        err = "unknown priority '" + prio + "'";
        return false;
    }
    spec.seed = static_cast<std::uint64_t>(v.numberOr("seed", 17));
    spec.steps = static_cast<std::uint64_t>(v.numberOr("steps", 40));
    spec.faultRate = v.numberOr("faultRate", 0.0);
    spec.ckptDir = v.stringOr("ckptDir", "");
    spec.deadlineMs =
        static_cast<std::uint32_t>(v.numberOr("deadlineMs", 0));
    spec.maxRetries =
        static_cast<std::uint32_t>(v.numberOr("maxRetries", 2));
    spec.chips = static_cast<std::size_t>(v.numberOr("chips", 4));
    spec.chipFailStep =
        static_cast<std::uint64_t>(v.numberOr("chipFailStep", 0));
    spec.stragglerStep =
        static_cast<std::uint64_t>(v.numberOr("stragglerStep", 0));
    return true;
}

int
runServe(const ServeArgs &a, const std::string &metricsOut,
         const ObsPlaneArgs &obsArgs)
{
    const json::ParseResult parsed = json::parseFile(a.jobsPath);
    if (!parsed.ok) {
        std::fprintf(stderr, "cqsim: %s: %s (at byte %zu)\n",
                     a.jobsPath.c_str(), parsed.error.c_str(),
                     parsed.errorAt);
        return 2;
    }
    const json::Value &root = parsed.value;
    const json::Array *jobs = nullptr;
    serve::SchedulerConfig cfg;
    if (root.isArray()) {
        jobs = &root.asArray();
    } else if (root.isObject()) {
        cfg.workers = static_cast<unsigned>(root.numberOr(
            "workers", static_cast<double>(cfg.workers)));
        cfg.queue.capacity = static_cast<std::size_t>(root.numberOr(
            "queueCapacity",
            static_cast<double>(cfg.queue.capacity)));
        cfg.threadsPerJob = static_cast<unsigned>(root.numberOr(
            "threadsPerJob", static_cast<double>(cfg.threadsPerJob)));
        cfg.shrinkWatermark =
            root.numberOr("shrinkWatermark", cfg.shrinkWatermark);
        cfg.backoffBaseMs = static_cast<std::uint32_t>(root.numberOr(
            "backoffBaseMs", static_cast<double>(cfg.backoffBaseMs)));
        const json::Value *arr = root.find("jobs");
        if (arr != nullptr && arr->isArray())
            jobs = &arr->asArray();
    }
    if (jobs == nullptr) {
        std::fprintf(stderr,
                     "cqsim: %s: expected a job array or an object "
                     "with a \"jobs\" array\n",
                     a.jobsPath.c_str());
        return 2;
    }
    if (a.workers > 0)
        cfg.workers = static_cast<unsigned>(a.workers);
    if (a.queueCap > 0)
        cfg.queue.capacity = static_cast<std::size_t>(a.queueCap);
    cfg.perJobTraceDir = obsArgs.jobTraceDir;
    if (!obsArgs.jobTraceDir.empty() || obsArgs.enabled())
        obs::TraceSession::instance().setEnabled(true);

    installShutdownSignalHandler();
    serve::Scheduler sched(cfg);

    obs::ObsServer obsServer;
    if (obsArgs.enabled()) {
        obs::ObsServerConfig ocfg;
        // Scheduler::statGroup() snapshots under the scheduler lock
        // and returns by value, so bridging it into a live scrape is
        // safe from the server thread.
        ocfg.bridged = [&sched] {
            std::vector<StatGroup> v;
            v.push_back(sched.statGroup());
            return v;
        };
        ocfg.jobsJson = [&sched] { return sched.jobsJson(); };
        ocfg.health.emplace_back("serve", [&sched] {
            const serve::SchedulerStats s = sched.stats();
            std::string out = "{\"queued\":";
            out += std::to_string(sched.queueDepth());
            out += ",\"running\":";
            out += std::to_string(sched.runningCount());
            out += ",\"accepted\":";
            out += std::to_string(s.accepted);
            out += ",\"terminal\":";
            out += std::to_string(s.terminal());
            out += ",\"draining\":";
            out += sched.draining() ? "true" : "false";
            out += "}";
            return out;
        });
        if (!startObsServer(obsServer, std::move(ocfg), obsArgs.port))
            return 2;
    }
    std::printf("serve:     %zu jobs, %u workers, queue capacity "
                "%zu\n",
                jobs->size(), sched.config().workers,
                sched.config().queue.capacity);

    for (const json::Value &v : *jobs) {
        serve::JobSpec spec;
        std::string err;
        if (!parseServeJob(v, spec, err)) {
            std::fprintf(stderr, "cqsim: %s: %s\n", a.jobsPath.c_str(),
                         err.c_str());
            return 2;
        }
        const serve::SubmitOutcome out = sched.submit(spec);
        std::printf("submit:    %-20s %-19s backpressure %s%s%s\n",
                    spec.id.c_str(),
                    serve::admissionVerdictName(out.verdict),
                    serve::backpressureName(out.backpressure),
                    out.shedJobId.empty() ? "" : ", shed ",
                    out.shedJobId.c_str());
        if (out.verdict == serve::AdmissionVerdict::RejectedInvalid)
            std::printf("           (%s)\n", out.reason.c_str());
    }

    // Drain on the first SIGTERM/SIGINT; the handler escalates a
    // second signal to an immediate exit on its own.
    while (!sched.waitIdle(50)) {
        if (shutdownRequested() && !sched.draining()) {
            std::printf("serve:     shutdown signal - draining "
                        "(running jobs stop at their next "
                        "checkpoint)\n");
            sched.requestDrain();
        }
    }

    obsServer.stop();

    for (const serve::JobReport &r : sched.reports()) {
        std::printf("job:       %-20s %-10s attempts %u, crc %08x, "
                    "queue %.1f ms, run %.1f ms%s%s\n",
                    r.id.c_str(), serve::jobStateName(r.state),
                    r.attempts, r.resultCrc, r.queueMs, r.runMs,
                    r.detail.empty() ? "" : " - ",
                    r.detail.c_str());
    }
    const serve::SchedulerStats s = sched.stats();
    std::printf("summary:   %llu submitted, %llu accepted, %llu "
                "completed, %llu failed, %llu cancelled, %llu "
                "timed-out, %llu shed, %llu rejected, %llu retries\n",
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.failed),
                static_cast<unsigned long long>(s.cancelled),
                static_cast<unsigned long long>(s.timedOut),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(
                    s.rejectedFull + s.rejectedShutdown +
                    s.rejectedInvalid),
                static_cast<unsigned long long>(s.retries));

    if (!a.reportOut.empty()) {
        // Bounded retry with a stderr dead-letter on exhaustion: the
        // reports are the run's ground truth, so a full disk must not
        // lose them silently (serve/report.h).
        const auto wres =
            serve::writeReportsJson(a.reportOut, sched.reports());
        if (wres == serve::ReportWriteResult::DeadLettered)
            std::fprintf(stderr,
                         "cqsim: report %s dead-lettered to stderr\n",
                         a.reportOut.c_str());
    }
    if (!metricsOut.empty()) {
        const StatGroup g = sched.statGroup();
        // writeProm checks every stage and reports through
        // obs.write_errors; a failed metrics dump warns but does not
        // turn a successful serve run into a failure.
        obs::MetricRegistry::instance().writeProm(metricsOut, {&g});
    }
    return s.failed == 0 ? 0 : 1;
}

compiler::WorkloadIR
pickWorkload(const std::string &name, std::size_t batch)
{
    const std::size_t b = batch;
    if (name == "alexnet")
        return compiler::buildAlexNet(b ? b : 32);
    if (name == "resnet18")
        return compiler::buildResNet18(b ? b : 32);
    if (name == "googlenet")
        return compiler::buildGoogLeNet(b ? b : 32);
    if (name == "squeezenet")
        return compiler::buildSqueezeNet(b ? b : 32);
    if (name == "transformer")
        return compiler::buildTransformerBase(b ? b : 260);
    if (name == "lstm")
        return compiler::buildPtbLstm(b ? b : 1000);
    if (name == "tiny")
        return compiler::buildTinyCnn(b ? b : 4);
    std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
    usage();
    __builtin_unreachable();
}

compiler::WorkloadIR
gemmWorkload(const std::string &spec)
{
    std::uint64_t m = 0, n = 0, k = 0;
    if (std::sscanf(spec.c_str(), "%llu,%llu,%llu",
                    reinterpret_cast<unsigned long long *>(&m),
                    reinterpret_cast<unsigned long long *>(&n),
                    reinterpret_cast<unsigned long long *>(&k)) != 3 ||
        m == 0 || n == 0 || k == 0) {
        std::fprintf(stderr, "bad --gemm spec '%s' (want m,n,k)\n",
                     spec.c_str());
        usage();
    }
    compiler::NetworkBuilder b("gemm-" + spec, m);
    b.inputFlat(k);
    b.fc("gemm", n, false, m);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network, gemm, target = "cq", optimizer = "rmsprop";
    int bits = 8;
    std::size_t batch = 0, disasm = 0;
    bool stats = false, trace = false;
    std::string traceOut, metricsOut;
    ObsPlaneArgs obsArgs;
    TrainArgs train;
    ServeArgs serveArgs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--network")
            network = next();
        else if (arg == "--gemm")
            gemm = next();
        else if (arg == "--target")
            target = next();
        else if (arg == "--bits")
            bits = static_cast<int>(parseU64(arg, next(), 1, 64));
        else if (arg == "--optimizer")
            optimizer = next();
        else if (arg == "--batch")
            batch = static_cast<std::size_t>(
                parseU64(arg, next(), 1, 1u << 20));
        else if (arg == "--disasm")
            disasm = static_cast<std::size_t>(
                parseU64(arg, next(), 1, 1u << 24));
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--trace")
            trace = true;
        else if (arg == "--train")
            train.task = next();
        else if (arg == "--serve")
            serveArgs.jobsPath = next();
        else if (arg == "--serve-workers")
            serveArgs.workers = parseU64(arg, next(), 1, 256);
        else if (arg == "--serve-queue-cap")
            serveArgs.queueCap = parseU64(arg, next(), 1, 1u << 20);
        else if (arg == "--serve-report")
            serveArgs.reportOut = next();
        else if (arg == "--steps")
            train.steps = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--seed")
            train.seed = parseU64(arg, next(), 0, UINT64_MAX);
        else if (arg == "--ckpt-dir")
            train.ckptDir = next();
        else if (arg == "--ckpt-every")
            train.ckptEvery = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--ckpt-keep")
            train.ckptKeep = parseU64(arg, next(), 1, 1000);
        else if (arg == "--resume")
            train.resumeDir = next();
        else if (arg == "--sync-ckpt")
            train.syncCkpt = true;
        else if (arg == "--masters-out")
            train.mastersOut = next();
        else if (arg == "--ecc")
            train.ecc = true;
        else if (arg == "--abft")
            train.abft = true;
        else if (arg == "--fault-rate")
            train.faultRate = args::parseNonNegF64(kProg, arg, next());
        else if (arg == "--failpoints") {
            std::string fpErr;
            if (!fp::Registry::instance().configure(next(), &fpErr)) {
                std::fprintf(stderr, "cqsim: bad --failpoints: %s\n",
                             fpErr.c_str());
                return 2;
            }
        } else if (arg == "--trace-out")
            traceOut = next();
        else if (arg == "--metrics-out")
            metricsOut = next();
        else if (arg == "--telemetry-out")
            train.telemetryOut = next();
        else if (arg == "--metrics-every")
            train.metricsEvery = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--chips")
            train.chips = parseU64(arg, next(), 1, 32);
        else if (arg == "--chip-fail")
            train.chipFail = next();
        else if (arg == "--straggler")
            train.straggler = next();
        else if (arg == "--obs-port")
            obsArgs.port =
                static_cast<int>(parseU64(arg, next(), 0, 65535));
        else if (arg == "--job-trace-dir")
            obsArgs.jobTraceDir = next();
        else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "cqsim: unknown flag '%s' (see --help)\n",
                         arg.c_str());
            return 2;
        }
    }
    const int modes = (network.empty() ? 0 : 1) +
                      (gemm.empty() ? 0 : 1) +
                      (train.task.empty() ? 0 : 1) +
                      (serveArgs.jobsPath.empty() ? 0 : 1);
    if (modes != 1) {
        std::fprintf(stderr,
                     "cqsim: pick exactly one of --network / --gemm "
                     "/ --train / --serve\n");
        return 2;
    }
    if (!train.task.empty())
        return runTrain(train, traceOut, metricsOut, obsArgs);
    if (!serveArgs.jobsPath.empty())
        return runServe(serveArgs, metricsOut, obsArgs);

    const compiler::WorkloadIR ir =
        gemm.empty() ? pickWorkload(network, batch)
                     : gemmWorkload(gemm);

    arch::CambriconQConfig cfg;
    compiler::CodegenOptions opts;
    if (target == "cq") {
        cfg = arch::CambriconQConfig::edge();
    } else if (target == "cq-nondp") {
        cfg = arch::CambriconQConfig::edgeNoNdp();
    } else if (target == "cq-t") {
        cfg = arch::CambriconQConfig::throughputT();
    } else if (target == "cq-v") {
        cfg = arch::CambriconQConfig::throughputV();
    } else if (target == "tpu") {
        cfg = baseline::tpuConfig();
        opts.target = compiler::CodegenOptions::Target::Tpu;
    } else {
        std::fprintf(stderr, "unknown target '%s'\n", target.c_str());
        usage();
    }
    if (bits != 4 && bits != 8 && bits != 12 && bits != 16) {
        std::fprintf(stderr, "unsupported --bits %d\n", bits);
        usage();
    }
    opts.bits = bits;
    if (optimizer == "sgd")
        opts.optimizer = nn::OptimizerKind::SGD;
    else if (optimizer == "adagrad")
        opts.optimizer = nn::OptimizerKind::AdaGrad;
    else if (optimizer == "rmsprop")
        opts.optimizer = nn::OptimizerKind::RMSProp;
    else if (optimizer == "adam")
        opts.optimizer = nn::OptimizerKind::Adam;
    else
        usage();

    const arch::Program prog =
        compiler::generateProgram(ir, cfg, opts);
    const auto traffic = compiler::summarizeTraffic(prog);

    std::printf("workload:  %s (batch %zu, %.2f GMACs, %.1f M "
                "weights)\n",
                ir.name.c_str(), ir.batch, ir.totalMacs / 1e9,
                ir.totalWeights / 1e6);
    std::printf("target:    %s @ INT%d, optimizer %s\n",
                cfg.name.c_str(), bits, optimizer.c_str());
    std::printf("program:   %zu instructions, %.3f GB loads, %.3f GB "
                "stores\n",
                prog.size(), traffic.loadBytes / 1e9,
                traffic.storeBytes / 1e9);

    if (disasm > 0) {
        std::printf("\ndisassembly (first %zu):\n",
                    std::min(disasm, prog.size()));
        for (std::size_t i = 0; i < std::min(disasm, prog.size());
             ++i)
            std::printf("  %6zu: %s\n", i, prog[i].toString().c_str());
    }

    arch::Accelerator acc(cfg);
    // --trace-out needs the per-instruction trace even when the
    // textual --trace dump was not requested.
    const auto report = acc.run(prog, trace || !traceOut.empty());

    std::printf("\nresult:    %.3f ms, %.2f mJ (%.2f W average)\n",
                report.timeMs(cfg.freqGhz), report.energyMj(),
                report.energyMj() / report.timeMs(cfg.freqGhz));
    std::printf("phases:   ");
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        std::printf(" %s=%.1f%%",
                    arch::phaseName(static_cast<arch::Phase>(p)),
                    100.0 * report.phaseFraction(
                                static_cast<arch::Phase>(p)));
    std::printf("\nunits:    ");
    for (std::size_t u = 0; u < arch::kNumUnits; ++u)
        std::printf(" %s=%.1f%%",
                    arch::unitName(static_cast<arch::Unit>(u)),
                    100.0 * report.unitBusy[u] /
                        static_cast<double>(report.totalTicks));
    std::printf("\nenergy:    ACC %.1f mJ | BUF %.1f mJ | DDR-dyn "
                "%.1f mJ | DDR-standby %.1f mJ | static %.1f mJ\n",
                report.energy.accPj * 1e-9,
                report.energy.bufPj * 1e-9,
                report.energy.ddrDynamicPj * 1e-9,
                report.energy.ddrStandbyPj * 1e-9,
                report.energy.chipStaticPj * 1e-9);

    if (stats) {
        std::printf("\n%s",
                    report.activity.dump("activity counters:").c_str());
    }
    if (trace) {
        std::printf("\ntrace: %zu entries (instr unit phase start "
                    "end); first 20:\n",
                    report.trace.size());
        for (std::size_t i = 0;
             i < std::min<std::size_t>(20, report.trace.size()); ++i) {
            const auto &e = report.trace[i];
            std::printf("  %6u %-9s %-2s %10llu %10llu\n", e.instr,
                        arch::unitName(e.unit),
                        arch::phaseName(e.phase),
                        static_cast<unsigned long long>(e.start),
                        static_cast<unsigned long long>(e.end));
        }
    }
    if (!traceOut.empty()) {
        auto &session = obs::TraceSession::instance();
        session.setEnabled(true);
        const std::size_t spans = arch::exportPerfTraceToSession(
            report, cfg.freqGhz, session);
        session.writeChromeTrace(traceOut);
        std::printf("trace-out: %zu simulated spans -> %s\n", spans,
                    traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        obs::MetricRegistry::instance().writeProm(metricsOut,
                                                  {&report.activity});
        std::printf("metrics:   activity counters -> %s\n",
                    metricsOut.c_str());
    }
    return 0;
}
