/**
 * @file
 * cqsim: the command-line front end of the Cambricon-Q simulator.
 *
 * Lowers one of the Table VI workloads (or a custom GEMM) to an
 * instruction stream for the selected target and simulates one
 * training minibatch, printing time, energy, phase/unit breakdowns
 * and (optionally) the per-instruction trace or disassembly.
 *
 * A third mode actually trains: --train spiral runs the quantized
 * spiral-MLP workload under the crash-consistent generation store,
 * with elastic resume (--resume) and clean SIGTERM/SIGINT shutdown
 * (final synchronous checkpoint, then exit 0).
 *
 * Usage:
 *   cqsim --network resnet18 [--target cq|cq-nondp|cq-t|cq-v|tpu]
 *         [--bits 4|8|12|16] [--optimizer sgd|adagrad|rmsprop|adam]
 *         [--batch N] [--stats] [--disasm N] [--trace]
 *   cqsim --gemm m,n,k [--target ...] [--bits ...]
 *   cqsim --train spiral [--steps N] [--seed S] [--ckpt-dir D]
 *         [--ckpt-every N] [--ckpt-keep K] [--resume D]
 *         [--sync-ckpt] [--masters-out F]
 *
 * Observability (all modes): --trace-out F writes a Chrome
 * trace-event JSON (host spans in --train mode, per-unit simulated
 * timelines in --network/--gemm mode); --metrics-out F writes a
 * Prometheus text snapshot. --train additionally takes
 * --telemetry-out F (one JSONL record per step), --metrics-every N
 * (periodic metrics rewrite) and the in-situ correction knobs
 * --ecc, --abft and --fault-rate FLIPS_PER_MBIT.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/accelerator.h"
#include "arch/trace_export.h"
#include "baseline/tpu_sim.h"
#include "common/argparse.h"
#include "common/signal_flag.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"
#include "nn/guard/crash_harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace cq;

namespace {

constexpr const char *kProg = "cqsim";

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: cqsim --network "
        "<alexnet|resnet18|googlenet|squeezenet|transformer|lstm|tiny>\n"
        "             [--target cq|cq-nondp|cq-t|cq-v|tpu] [--bits B]\n"
        "             [--optimizer sgd|adagrad|rmsprop|adam] "
        "[--batch N]\n"
        "             [--stats] [--disasm N] [--trace]\n"
        "       cqsim --gemm m,n,k [options]\n"
        "       cqsim --train spiral [--steps N] [--seed S]\n"
        "             [--ckpt-dir D] [--ckpt-every N] [--ckpt-keep "
        "K]\n"
        "             [--resume D] [--sync-ckpt] [--masters-out F]\n"
        "             [--ecc] [--abft] [--fault-rate R]\n"
        "             [--telemetry-out F] [--metrics-every N]\n"
        "observability (all modes):\n"
        "             [--trace-out F] [--metrics-out F]\n");
}

void
usage()
{
    printUsage(stderr);
    std::exit(2);
}

/** Strict parses shared with the other tools (common/argparse.h). */
std::uint64_t
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t lo, std::uint64_t hi)
{
    return args::parseU64(kProg, flag, text, lo, hi);
}

/** The --train mode: real quantized training with the generation
 *  store, elastic resume and clean signal shutdown. */
struct TrainArgs
{
    std::string task;
    std::uint64_t steps = 60;
    std::uint64_t seed = 17;
    std::string ckptDir;
    std::uint64_t ckptEvery = 5;
    std::uint64_t ckptKeep = 3;
    std::string resumeDir;
    bool syncCkpt = false;
    std::string mastersOut;
    bool ecc = false;
    bool abft = false;
    double faultRate = 0.0;
    std::string telemetryOut;
    std::uint64_t metricsEvery = 0;
};

int
runTrain(const TrainArgs &a, const std::string &traceOut,
         const std::string &metricsOut)
{
    if (a.task != "spiral") {
        std::fprintf(stderr,
                     "cqsim: unknown --train task '%s' (supported: "
                     "spiral)\n",
                     a.task.c_str());
        return 2;
    }
    if (a.ckptDir.empty() && a.resumeDir.empty() &&
        a.mastersOut.empty() && traceOut.empty() &&
        metricsOut.empty() && a.telemetryOut.empty()) {
        std::fprintf(stderr,
                     "cqsim: --train needs --ckpt-dir, --resume, "
                     "--masters-out or an observability output "
                     "(nothing would be persisted)\n");
        return 2;
    }

    nn::guard::CrashHarnessConfig cfg;
    cfg.seed = a.seed;
    cfg.steps = a.steps;
    cfg.dir = a.ckptDir.empty() ? a.resumeDir : a.ckptDir;
    cfg.ckptEvery = a.ckptEvery;
    cfg.ckptKeep = static_cast<std::size_t>(a.ckptKeep);
    cfg.asyncCheckpoint = !a.syncCkpt;
    cfg.resume = !a.resumeDir.empty();
    cfg.resumeDir = a.resumeDir;
    cfg.handleSignals = true;
    cfg.mastersOut = a.mastersOut;
    cfg.ecc = a.ecc;
    cfg.abft = a.abft;
    cfg.faultFlipsPerMbit = a.faultRate;
    cfg.traceOut = traceOut;
    cfg.metricsOut = metricsOut;
    cfg.telemetryOut = a.telemetryOut;
    cfg.metricsEvery = a.metricsEvery;

    installShutdownSignalHandler();

    std::printf("train:     spiral MLP, steps %llu, seed %llu\n",
                static_cast<unsigned long long>(a.steps),
                static_cast<unsigned long long>(a.seed));
    if (!cfg.dir.empty())
        std::printf("ckpt:      dir %s, every %llu, keep %llu, %s\n",
                    cfg.dir.c_str(),
                    static_cast<unsigned long long>(a.ckptEvery),
                    static_cast<unsigned long long>(a.ckptKeep),
                    cfg.asyncCheckpoint ? "async" : "sync");
    if (!traceOut.empty() || !metricsOut.empty() ||
        !a.telemetryOut.empty())
        std::printf("obs:       trace %s, metrics %s, telemetry %s\n",
                    traceOut.empty() ? "-" : traceOut.c_str(),
                    metricsOut.empty() ? "-" : metricsOut.c_str(),
                    a.telemetryOut.empty() ? "-"
                                           : a.telemetryOut.c_str());

    const auto r = nn::guard::runCrashHarness(cfg);

    if (cfg.resume) {
        if (r.resumed)
            std::printf("resume:    generation %llu at step %llu "
                        "(%llu corrupt generations skipped)\n",
                        static_cast<unsigned long long>(
                            r.resumedGeneration),
                        static_cast<unsigned long long>(
                            r.resumedStep),
                        static_cast<unsigned long long>(
                            r.skippedCorrupt));
        else
            std::printf("resume:    cold start (no usable "
                        "generation in %s)\n",
                        a.resumeDir.c_str());
    }
    std::printf("result:    %llu steps run, final loss %.6f, "
                "masters crc %08x\n",
                static_cast<unsigned long long>(r.stepsRun),
                r.finalLoss, r.mastersCrc);
    if (r.stopRequested)
        std::printf("shutdown:  signal handled; final checkpoint "
                    "committed before exit\n");
    return 0;
}

compiler::WorkloadIR
pickWorkload(const std::string &name, std::size_t batch)
{
    const std::size_t b = batch;
    if (name == "alexnet")
        return compiler::buildAlexNet(b ? b : 32);
    if (name == "resnet18")
        return compiler::buildResNet18(b ? b : 32);
    if (name == "googlenet")
        return compiler::buildGoogLeNet(b ? b : 32);
    if (name == "squeezenet")
        return compiler::buildSqueezeNet(b ? b : 32);
    if (name == "transformer")
        return compiler::buildTransformerBase(b ? b : 260);
    if (name == "lstm")
        return compiler::buildPtbLstm(b ? b : 1000);
    if (name == "tiny")
        return compiler::buildTinyCnn(b ? b : 4);
    std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
    usage();
    __builtin_unreachable();
}

compiler::WorkloadIR
gemmWorkload(const std::string &spec)
{
    std::uint64_t m = 0, n = 0, k = 0;
    if (std::sscanf(spec.c_str(), "%llu,%llu,%llu",
                    reinterpret_cast<unsigned long long *>(&m),
                    reinterpret_cast<unsigned long long *>(&n),
                    reinterpret_cast<unsigned long long *>(&k)) != 3 ||
        m == 0 || n == 0 || k == 0) {
        std::fprintf(stderr, "bad --gemm spec '%s' (want m,n,k)\n",
                     spec.c_str());
        usage();
    }
    compiler::NetworkBuilder b("gemm-" + spec, m);
    b.inputFlat(k);
    b.fc("gemm", n, false, m);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network, gemm, target = "cq", optimizer = "rmsprop";
    int bits = 8;
    std::size_t batch = 0, disasm = 0;
    bool stats = false, trace = false;
    std::string traceOut, metricsOut;
    TrainArgs train;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--network")
            network = next();
        else if (arg == "--gemm")
            gemm = next();
        else if (arg == "--target")
            target = next();
        else if (arg == "--bits")
            bits = static_cast<int>(parseU64(arg, next(), 1, 64));
        else if (arg == "--optimizer")
            optimizer = next();
        else if (arg == "--batch")
            batch = static_cast<std::size_t>(
                parseU64(arg, next(), 1, 1u << 20));
        else if (arg == "--disasm")
            disasm = static_cast<std::size_t>(
                parseU64(arg, next(), 1, 1u << 24));
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--trace")
            trace = true;
        else if (arg == "--train")
            train.task = next();
        else if (arg == "--steps")
            train.steps = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--seed")
            train.seed = parseU64(arg, next(), 0, UINT64_MAX);
        else if (arg == "--ckpt-dir")
            train.ckptDir = next();
        else if (arg == "--ckpt-every")
            train.ckptEvery = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--ckpt-keep")
            train.ckptKeep = parseU64(arg, next(), 1, 1000);
        else if (arg == "--resume")
            train.resumeDir = next();
        else if (arg == "--sync-ckpt")
            train.syncCkpt = true;
        else if (arg == "--masters-out")
            train.mastersOut = next();
        else if (arg == "--ecc")
            train.ecc = true;
        else if (arg == "--abft")
            train.abft = true;
        else if (arg == "--fault-rate")
            train.faultRate = args::parseNonNegF64(kProg, arg, next());
        else if (arg == "--trace-out")
            traceOut = next();
        else if (arg == "--metrics-out")
            metricsOut = next();
        else if (arg == "--telemetry-out")
            train.telemetryOut = next();
        else if (arg == "--metrics-every")
            train.metricsEvery = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr,
                         "cqsim: unknown flag '%s' (see --help)\n",
                         arg.c_str());
            return 2;
        }
    }
    const int modes = (network.empty() ? 0 : 1) +
                      (gemm.empty() ? 0 : 1) +
                      (train.task.empty() ? 0 : 1);
    if (modes != 1) {
        std::fprintf(stderr,
                     "cqsim: pick exactly one of --network / --gemm "
                     "/ --train\n");
        return 2;
    }
    if (!train.task.empty())
        return runTrain(train, traceOut, metricsOut);

    const compiler::WorkloadIR ir =
        gemm.empty() ? pickWorkload(network, batch)
                     : gemmWorkload(gemm);

    arch::CambriconQConfig cfg;
    compiler::CodegenOptions opts;
    if (target == "cq") {
        cfg = arch::CambriconQConfig::edge();
    } else if (target == "cq-nondp") {
        cfg = arch::CambriconQConfig::edgeNoNdp();
    } else if (target == "cq-t") {
        cfg = arch::CambriconQConfig::throughputT();
    } else if (target == "cq-v") {
        cfg = arch::CambriconQConfig::throughputV();
    } else if (target == "tpu") {
        cfg = baseline::tpuConfig();
        opts.target = compiler::CodegenOptions::Target::Tpu;
    } else {
        std::fprintf(stderr, "unknown target '%s'\n", target.c_str());
        usage();
    }
    if (bits != 4 && bits != 8 && bits != 12 && bits != 16) {
        std::fprintf(stderr, "unsupported --bits %d\n", bits);
        usage();
    }
    opts.bits = bits;
    if (optimizer == "sgd")
        opts.optimizer = nn::OptimizerKind::SGD;
    else if (optimizer == "adagrad")
        opts.optimizer = nn::OptimizerKind::AdaGrad;
    else if (optimizer == "rmsprop")
        opts.optimizer = nn::OptimizerKind::RMSProp;
    else if (optimizer == "adam")
        opts.optimizer = nn::OptimizerKind::Adam;
    else
        usage();

    const arch::Program prog =
        compiler::generateProgram(ir, cfg, opts);
    const auto traffic = compiler::summarizeTraffic(prog);

    std::printf("workload:  %s (batch %zu, %.2f GMACs, %.1f M "
                "weights)\n",
                ir.name.c_str(), ir.batch, ir.totalMacs / 1e9,
                ir.totalWeights / 1e6);
    std::printf("target:    %s @ INT%d, optimizer %s\n",
                cfg.name.c_str(), bits, optimizer.c_str());
    std::printf("program:   %zu instructions, %.3f GB loads, %.3f GB "
                "stores\n",
                prog.size(), traffic.loadBytes / 1e9,
                traffic.storeBytes / 1e9);

    if (disasm > 0) {
        std::printf("\ndisassembly (first %zu):\n",
                    std::min(disasm, prog.size()));
        for (std::size_t i = 0; i < std::min(disasm, prog.size());
             ++i)
            std::printf("  %6zu: %s\n", i, prog[i].toString().c_str());
    }

    arch::Accelerator acc(cfg);
    // --trace-out needs the per-instruction trace even when the
    // textual --trace dump was not requested.
    const auto report = acc.run(prog, trace || !traceOut.empty());

    std::printf("\nresult:    %.3f ms, %.2f mJ (%.2f W average)\n",
                report.timeMs(cfg.freqGhz), report.energyMj(),
                report.energyMj() / report.timeMs(cfg.freqGhz));
    std::printf("phases:   ");
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        std::printf(" %s=%.1f%%",
                    arch::phaseName(static_cast<arch::Phase>(p)),
                    100.0 * report.phaseFraction(
                                static_cast<arch::Phase>(p)));
    std::printf("\nunits:    ");
    for (std::size_t u = 0; u < arch::kNumUnits; ++u)
        std::printf(" %s=%.1f%%",
                    arch::unitName(static_cast<arch::Unit>(u)),
                    100.0 * report.unitBusy[u] /
                        static_cast<double>(report.totalTicks));
    std::printf("\nenergy:    ACC %.1f mJ | BUF %.1f mJ | DDR-dyn "
                "%.1f mJ | DDR-standby %.1f mJ | static %.1f mJ\n",
                report.energy.accPj * 1e-9,
                report.energy.bufPj * 1e-9,
                report.energy.ddrDynamicPj * 1e-9,
                report.energy.ddrStandbyPj * 1e-9,
                report.energy.chipStaticPj * 1e-9);

    if (stats) {
        std::printf("\n%s",
                    report.activity.dump("activity counters:").c_str());
    }
    if (trace) {
        std::printf("\ntrace: %zu entries (instr unit phase start "
                    "end); first 20:\n",
                    report.trace.size());
        for (std::size_t i = 0;
             i < std::min<std::size_t>(20, report.trace.size()); ++i) {
            const auto &e = report.trace[i];
            std::printf("  %6u %-9s %-2s %10llu %10llu\n", e.instr,
                        arch::unitName(e.unit),
                        arch::phaseName(e.phase),
                        static_cast<unsigned long long>(e.start),
                        static_cast<unsigned long long>(e.end));
        }
    }
    if (!traceOut.empty()) {
        auto &session = obs::TraceSession::instance();
        session.setEnabled(true);
        const std::size_t spans = arch::exportPerfTraceToSession(
            report, cfg.freqGhz, session);
        session.writeChromeTrace(traceOut);
        std::printf("trace-out: %zu simulated spans -> %s\n", spans,
                    traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        obs::MetricRegistry::instance().writeProm(metricsOut,
                                                  {&report.activity});
        std::printf("metrics:   activity counters -> %s\n",
                    metricsOut.c_str());
    }
    return 0;
}
