/**
 * @file
 * cqsim: the command-line front end of the Cambricon-Q simulator.
 *
 * Lowers one of the Table VI workloads (or a custom GEMM) to an
 * instruction stream for the selected target and simulates one
 * training minibatch, printing time, energy, phase/unit breakdowns
 * and (optionally) the per-instruction trace or disassembly.
 *
 * Usage:
 *   cqsim --network resnet18 [--target cq|cq-nondp|cq-t|cq-v|tpu]
 *         [--bits 4|8|12|16] [--optimizer sgd|adagrad|rmsprop|adam]
 *         [--batch N] [--stats] [--disasm N] [--trace]
 *   cqsim --gemm m,n,k [--target ...] [--bits ...]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/accelerator.h"
#include "baseline/tpu_sim.h"
#include "compiler/codegen.h"
#include "compiler/workloads.h"

using namespace cq;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: cqsim --network "
        "<alexnet|resnet18|googlenet|squeezenet|transformer|lstm|tiny>\n"
        "             [--target cq|cq-nondp|cq-t|cq-v|tpu] [--bits B]\n"
        "             [--optimizer sgd|adagrad|rmsprop|adam] "
        "[--batch N]\n"
        "             [--stats] [--disasm N] [--trace]\n"
        "       cqsim --gemm m,n,k [options]\n");
    std::exit(2);
}

compiler::WorkloadIR
pickWorkload(const std::string &name, std::size_t batch)
{
    const std::size_t b = batch;
    if (name == "alexnet")
        return compiler::buildAlexNet(b ? b : 32);
    if (name == "resnet18")
        return compiler::buildResNet18(b ? b : 32);
    if (name == "googlenet")
        return compiler::buildGoogLeNet(b ? b : 32);
    if (name == "squeezenet")
        return compiler::buildSqueezeNet(b ? b : 32);
    if (name == "transformer")
        return compiler::buildTransformerBase(b ? b : 260);
    if (name == "lstm")
        return compiler::buildPtbLstm(b ? b : 1000);
    if (name == "tiny")
        return compiler::buildTinyCnn(b ? b : 4);
    std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
    usage();
    __builtin_unreachable();
}

compiler::WorkloadIR
gemmWorkload(const std::string &spec)
{
    std::uint64_t m = 0, n = 0, k = 0;
    if (std::sscanf(spec.c_str(), "%llu,%llu,%llu",
                    reinterpret_cast<unsigned long long *>(&m),
                    reinterpret_cast<unsigned long long *>(&n),
                    reinterpret_cast<unsigned long long *>(&k)) != 3 ||
        m == 0 || n == 0 || k == 0) {
        std::fprintf(stderr, "bad --gemm spec '%s' (want m,n,k)\n",
                     spec.c_str());
        usage();
    }
    compiler::NetworkBuilder b("gemm-" + spec, m);
    b.inputFlat(k);
    b.fc("gemm", n, false, m);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network, gemm, target = "cq", optimizer = "rmsprop";
    int bits = 8;
    std::size_t batch = 0, disasm = 0;
    bool stats = false, trace = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--network")
            network = next();
        else if (arg == "--gemm")
            gemm = next();
        else if (arg == "--target")
            target = next();
        else if (arg == "--bits")
            bits = std::atoi(next().c_str());
        else if (arg == "--optimizer")
            optimizer = next();
        else if (arg == "--batch")
            batch = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--disasm")
            disasm = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--trace")
            trace = true;
        else
            usage();
    }
    if (network.empty() == gemm.empty())
        usage(); // exactly one of --network / --gemm

    const compiler::WorkloadIR ir =
        gemm.empty() ? pickWorkload(network, batch)
                     : gemmWorkload(gemm);

    arch::CambriconQConfig cfg;
    compiler::CodegenOptions opts;
    if (target == "cq") {
        cfg = arch::CambriconQConfig::edge();
    } else if (target == "cq-nondp") {
        cfg = arch::CambriconQConfig::edgeNoNdp();
    } else if (target == "cq-t") {
        cfg = arch::CambriconQConfig::throughputT();
    } else if (target == "cq-v") {
        cfg = arch::CambriconQConfig::throughputV();
    } else if (target == "tpu") {
        cfg = baseline::tpuConfig();
        opts.target = compiler::CodegenOptions::Target::Tpu;
    } else {
        std::fprintf(stderr, "unknown target '%s'\n", target.c_str());
        usage();
    }
    if (bits != 4 && bits != 8 && bits != 12 && bits != 16) {
        std::fprintf(stderr, "unsupported --bits %d\n", bits);
        usage();
    }
    opts.bits = bits;
    if (optimizer == "sgd")
        opts.optimizer = nn::OptimizerKind::SGD;
    else if (optimizer == "adagrad")
        opts.optimizer = nn::OptimizerKind::AdaGrad;
    else if (optimizer == "rmsprop")
        opts.optimizer = nn::OptimizerKind::RMSProp;
    else if (optimizer == "adam")
        opts.optimizer = nn::OptimizerKind::Adam;
    else
        usage();

    const arch::Program prog =
        compiler::generateProgram(ir, cfg, opts);
    const auto traffic = compiler::summarizeTraffic(prog);

    std::printf("workload:  %s (batch %zu, %.2f GMACs, %.1f M "
                "weights)\n",
                ir.name.c_str(), ir.batch, ir.totalMacs / 1e9,
                ir.totalWeights / 1e6);
    std::printf("target:    %s @ INT%d, optimizer %s\n",
                cfg.name.c_str(), bits, optimizer.c_str());
    std::printf("program:   %zu instructions, %.3f GB loads, %.3f GB "
                "stores\n",
                prog.size(), traffic.loadBytes / 1e9,
                traffic.storeBytes / 1e9);

    if (disasm > 0) {
        std::printf("\ndisassembly (first %zu):\n",
                    std::min(disasm, prog.size()));
        for (std::size_t i = 0; i < std::min(disasm, prog.size());
             ++i)
            std::printf("  %6zu: %s\n", i, prog[i].toString().c_str());
    }

    arch::Accelerator acc(cfg);
    const auto report = acc.run(prog, trace);

    std::printf("\nresult:    %.3f ms, %.2f mJ (%.2f W average)\n",
                report.timeMs(cfg.freqGhz), report.energyMj(),
                report.energyMj() / report.timeMs(cfg.freqGhz));
    std::printf("phases:   ");
    for (std::size_t p = 0; p < arch::kNumPhases; ++p)
        std::printf(" %s=%.1f%%",
                    arch::phaseName(static_cast<arch::Phase>(p)),
                    100.0 * report.phaseFraction(
                                static_cast<arch::Phase>(p)));
    std::printf("\nunits:    ");
    for (std::size_t u = 0; u < arch::kNumUnits; ++u)
        std::printf(" %s=%.1f%%",
                    arch::unitName(static_cast<arch::Unit>(u)),
                    100.0 * report.unitBusy[u] /
                        static_cast<double>(report.totalTicks));
    std::printf("\nenergy:    ACC %.1f mJ | BUF %.1f mJ | DDR-dyn "
                "%.1f mJ | DDR-standby %.1f mJ | static %.1f mJ\n",
                report.energy.accPj * 1e-9,
                report.energy.bufPj * 1e-9,
                report.energy.ddrDynamicPj * 1e-9,
                report.energy.ddrStandbyPj * 1e-9,
                report.energy.chipStaticPj * 1e-9);

    if (stats) {
        std::printf("\n%s",
                    report.activity.dump("activity counters:").c_str());
    }
    if (trace) {
        std::printf("\ntrace: %zu entries (instr unit phase start "
                    "end); first 20:\n",
                    report.trace.size());
        for (std::size_t i = 0;
             i < std::min<std::size_t>(20, report.trace.size()); ++i) {
            const auto &e = report.trace[i];
            std::printf("  %6u %-9s %-2s %10llu %10llu\n", e.instr,
                        arch::unitName(e.unit),
                        arch::phaseName(e.phase),
                        static_cast<unsigned long long>(e.start),
                        static_cast<unsigned long long>(e.end));
        }
    }
    return 0;
}
