/**
 * @file
 * Exhaustive failpoint sweep: fire every declared failpoint (and
 * sampled pairs) inside short train / serve / dist / bench runs and
 * assert the four robustness invariants:
 *
 *   1. no crash    - the child process exits normally (no signal)
 *   2. no hang     - the child finishes inside a hard deadline (the
 *                    parent kills and flags it otherwise; the legs
 *                    also carry a CancelToken deadline as a second
 *                    fence)
 *   3. typed path  - the failure surfaced through the scenario's
 *                    typed handling (training completed, the store
 *                    still verifies, the report dead-lettered, ...)
 *   4. no committed step lost - whenever any checkpoint generation
 *                    exists on disk after the storm, loadLatest()
 *                    classifies Ok
 *
 * plus the coverage audit: any site that was evaluated but is absent
 * from the declared table (common/failpoint.h declaredSites()) fails
 * the sweep, so an unregistered failure path cannot silently join
 * the codebase (--mode selftest proves the audit fires).
 *
 * Modes (--mode):
 *   sweep        one trial per declared site (default action
 *                "fail,once=1", override with --action)
 *   pairs        sampled two-site trials within a scenario family
 *   enospc       byte-offset scan: disk turns (and stays) full at
 *                every --enospc-stride'th byte of the checkpoint
 *                body / manifest write streams
 *   obs-identity instrumented run with every obs.* sink failpoint
 *                firing must train bitwise identically (mastersCrc)
 *                to a dark run
 *   selftest     an unregistered failure path must be caught
 *   list         print the declared site table
 *   all          sweep + pairs + enospc + obs-identity + selftest
 *
 * Every trial runs in a forked child (a genuinely dying child never
 * takes the sweep down); the parent classifies exit status. Exits 0
 * iff no trial crashed, hung, or violated an invariant AND at least
 * --min-covered sites actually fired.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/argparse.h"
#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/fileutil.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "dist/dist_harness.h"
#include "harness/export.h"
#include "nn/guard/ckpt_store.h"
#include "nn/guard/crash_harness.h"
#include "obs/http_export.h"
#include "obs/obs_server.h"
#include "serve/job_runner.h"
#include "serve/report.h"

using namespace cq;

namespace {

constexpr const char *kProg = "cq_faultsweep";

/** Child exit codes (anything else, or a signal, is a fatal crash). */
enum ChildExit : int
{
    kHandled = 0,
    /** The scenario never reached the armed site (coverage gap, not
     *  a failure): e.g. a byte offset past the end of the stream. */
    kNotCovered = 40,
    /** A site was evaluated that is not in the declared table. */
    kUndeclaredSite = 42,
    /** A robustness invariant did not hold. */
    kInvariantViolation = 43,
};

/** One armed site for a trial. */
struct Arm
{
    std::string site;
    std::string action;
};

struct Options
{
    std::string mode = "all";
    std::string filter;
    std::string action = "fail,once=1";
    std::string dir;
    std::uint64_t pairs = 12;
    std::uint64_t enospcStride = 997;
    std::uint64_t timeoutMs = 120000;
    std::uint64_t seed = 1;
    std::uint64_t minCovered = 0;
    bool verbose = false;
};

struct Tally
{
    unsigned handled = 0;
    unsigned notCovered = 0;
    unsigned undeclared = 0;
    unsigned invariant = 0;
    unsigned crashed = 0;
    unsigned hung = 0;
    std::vector<std::string> coveredSites;

    bool
    clean() const
    {
        return undeclared == 0 && invariant == 0 && crashed == 0 &&
               hung == 0;
    }

    void
    cover(const std::string &site)
    {
        if (std::find(coveredSites.begin(), coveredSites.end(),
                      site) == coveredSites.end())
            coveredSites.push_back(site);
    }
};

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/**
 * Scenario family of a site. Sites of one family fire inside the same
 * short run, which is also the sampling domain for --mode pairs.
 */
std::string
familyOf(const std::string &site)
{
    if (startsWith(site, "obs."))
        return "obs";
    if (startsWith(site, "dist.manifest."))
        return "dist";
    if (startsWith(site, "serve.report."))
        return "serve";
    if (startsWith(site, "bench.json."))
        return "bench";
    // ckpt.* and fs.* all fire inside the checkpointed resume leg.
    return "ckpt";
}

// --------------------------------------------------------- scenarios
// Each runs in the forked child: arm the sites, set trace mode, run
// the short leg, then check the family's invariants. Return a
// ChildExit (fired/coverage accounting happens in the caller).

void
armAll(const std::vector<Arm> &arms)
{
    for (const Arm &a : arms) {
        std::string err;
        if (!fp::Registry::instance().configureOne(a.site, a.action,
                                                   &err)) {
            std::fprintf(stderr, "%s: bad action '%s': %s\n", kProg,
                         a.action.c_str(), err.c_str());
            std::exit(2);
        }
    }
}

/** Invariant 4: if any generation file survives under @p dir, the
 *  store must still produce a verifying-Ok load. */
bool
storeStillLoads(const std::string &dir)
{
    fp::Registry::instance().disarmAll(); // verify with clean I/O
    std::vector<std::string> names;
    if (!listDirEx(dir, names))
        return true; // store never materialized
    bool anyGen = false;
    for (const std::string &n : names)
        anyGen = anyGen ||
                 nn::guard::CheckpointStore::parseGenerationFileName(
                     n) != 0;
    if (!anyGen)
        return true;
    nn::guard::CheckpointStoreConfig cfg;
    cfg.dir = dir;
    nn::guard::CheckpointStore store(cfg);
    nn::guard::TrainerSnapshot snap;
    return store.loadLatest(snap).result ==
           nn::guard::CheckpointLoadResult::Ok;
}

/**
 * The checkpoint-family leg: a clean leg populates the store, then
 * the armed sites fire inside a resumed leg (covers the write ladder,
 * the manifest rewrite, the read/verify path and the fs helpers).
 */
int
runCkptScenario(const std::string &dir, const std::vector<Arm> &arms,
                CancelToken &cancel)
{
    nn::guard::CrashHarnessConfig cfg;
    cfg.seed = 21;
    cfg.steps = 8;
    cfg.batchSize = 16;
    cfg.dir = dir + "/store";
    cfg.ckptEvery = 2;
    cfg.ckptKeep = 2;
    cfg.asyncCheckpoint = false; // deterministic fire points
    cfg.cancel = &cancel;
    nn::guard::runCrashHarness(cfg);

    armAll(arms);
    cfg.resume = true;
    cfg.steps = 16;
    const auto r = nn::guard::runCrashHarness(cfg);
    if (r.cancelled)
        return kInvariantViolation; // deadline hit: the leg wedged
    // Training must survive any single persistence failure.
    if (r.stepsRun == 0)
        return kInvariantViolation;
    return storeStillLoads(cfg.dir) ? kHandled : kInvariantViolation;
}

/** Single leg with every observability output on — including a live
 *  ObsServer being scraped from a sidecar thread, so the obs.http.*
 *  sites evaluate; an obs failure must never stop training. */
int
runObsScenario(const std::string &dir, const std::vector<Arm> &arms,
               CancelToken &cancel)
{
    armAll(arms);

    obs::ObsServer server;
    obs::ObsServerConfig scfg; // port 0 = ephemeral
    const bool serverUp = server.start(scfg);
    std::atomic<bool> stopScrape{false};
    std::thread scraper([&] {
        while (serverUp && !stopScrape.load()) {
            int status = 0;
            std::string body;
            // An armed obs.http.* site turns these into dropped
            // connections; the scraper must simply shrug.
            obs::httpGet(server.port(), "/metrics", status, body,
                         500);
            ::usleep(2000);
        }
    });

    nn::guard::CrashHarnessConfig cfg;
    cfg.seed = 23;
    cfg.steps = 8;
    cfg.batchSize = 16;
    cfg.cancel = &cancel;
    cfg.telemetryOut = dir + "/telemetry.jsonl";
    cfg.traceOut = dir + "/trace.json";
    cfg.metricsOut = dir + "/metrics.prom";
    cfg.metricsEvery = 2;
    const auto r = nn::guard::runCrashHarness(cfg);

    // One guaranteed scrape after the leg, so obs.http.accept /
    // obs.http.write are evaluated even on a machine where the leg
    // outruns the sidecar's first connect.
    if (serverUp) {
        int status = 0;
        std::string body;
        obs::httpGet(server.port(), "/healthz", status, body, 500);
    }
    stopScrape.store(true);
    scraper.join();
    server.stop();

    return (!r.cancelled && r.stepsRun == cfg.steps)
               ? kHandled
               : kInvariantViolation;
}

/** Two-chip leg with shard checkpointing (dist.manifest sites). */
int
runDistScenario(const std::string &dir, const std::vector<Arm> &arms,
                CancelToken &cancel)
{
    armAll(arms);
    dist::DistHarnessConfig cfg;
    cfg.seed = 11;
    cfg.chips = 2;
    cfg.steps = 6;
    cfg.globalBatch = 16;
    cfg.ckptRoot = dir + "/dist";
    cfg.ckptEvery = 2;
    cfg.evalSize = 32;
    cfg.cancel = &cancel;
    const auto r = dist::runDistHarness(cfg);
    return r.train.stepsCompleted == cfg.steps &&
                   r.train.survivors > 0
               ? kHandled
               : kInvariantViolation;
}

/** One standalone job, then persist its report: a failing report file
 *  must end typed (retried or dead-lettered), never lost silently. */
int
runServeScenario(const std::string &dir, const std::vector<Arm> &arms,
                 CancelToken &)
{
    serve::JobSpec spec;
    spec.id = "sweep-job";
    spec.seed = 5;
    spec.steps = 4;
    const serve::JobReport rep = serve::runJobStandalone(spec);

    armAll(arms);
    const std::string path = dir + "/report.json";
    const auto res = serve::writeReportsJson(path, {rep});
    fp::Registry::instance().disarmAll();
    if (res == serve::ReportWriteResult::DeadLettered)
        return kHandled; // typed: content preserved on stderr
    // Claimed written: the file must really be there and parseable
    // as non-empty JSON.
    return fileSize(path) > 2 ? kHandled : kInvariantViolation;
}

/** Export a BENCH_*.json; a failed write must surface through the
 *  error string, never as a silent half-file. */
int
runBenchScenario(const std::string &dir, const std::vector<Arm> &arms,
                 CancelToken &)
{
    bench::RunRecord rec;
    rec.name = "faultsweep_probe";
    rec.area = "faultsweep";
    rec.result.set("probe", 1.0);
    bench::WorkloadContext ctx;
    const bench::Provenance prov = bench::Provenance::capture(ctx);

    armAll(arms);
    std::string err;
    const auto written = bench::writeBenchJsonFiles(
        {rec}, prov, dir + "/bench", err);
    fp::Registry::instance().disarmAll();
    if (!err.empty())
        return kHandled; // typed failure
    if (written.size() != 1 || fileSize(written[0]) <= 2)
        return kInvariantViolation; // silent loss
    return kHandled;
}

/**
 * Child body for one trial. Never returns: exits with a ChildExit.
 * @p family picks the scenario; arms fire inside it.
 */
[[noreturn]] void
childTrial(const std::string &family, const std::string &dir,
           const std::vector<Arm> &arms, std::uint64_t timeoutMs)
{
    ThreadPool::instance().reinitAfterFork();
    fp::Registry::instance().reset();
    fp::Registry::instance().setTrace(true);
    CancelToken cancel;
    cancel.setDeadlineInMs(timeoutMs);

    int rc;
    if (family == "obs")
        rc = runObsScenario(dir, arms, cancel);
    else if (family == "dist")
        rc = runDistScenario(dir, arms, cancel);
    else if (family == "serve")
        rc = runServeScenario(dir, arms, cancel);
    else if (family == "bench")
        rc = runBenchScenario(dir, arms, cancel);
    else
        rc = runCkptScenario(dir, arms, cancel);

    // Coverage audit: everything evaluated must be declared.
    for (const std::string &s :
         fp::Registry::instance().hitSites()) {
        if (!fp::Registry::isDeclared(s)) {
            std::fprintf(stderr,
                         "%s: site '%s' was evaluated but is not in "
                         "the declared table (common/failpoint.cc)\n",
                         kProg, s.c_str());
            std::exit(kUndeclaredSite);
        }
    }
    // Did the armed sites actually fire?
    if (rc == kHandled) {
        std::uint64_t fires = 0;
        for (const Arm &a : arms)
            fires += fp::Registry::instance().site(a.site).fires();
        if (fires == 0)
            std::exit(kNotCovered);
    }
    std::exit(rc);
}

// ----------------------------------------------------------- parent

/** Outcome classification of one reaped child. */
enum class TrialResult
{
    Handled,
    NotCovered,
    Undeclared,
    Invariant,
    Crashed,
    Hung,
};

const char *
trialResultName(TrialResult r)
{
    switch (r) {
      case TrialResult::Handled:    return "handled";
      case TrialResult::NotCovered: return "not-covered";
      case TrialResult::Undeclared: return "UNDECLARED-SITE";
      case TrialResult::Invariant:  return "INVARIANT-VIOLATION";
      case TrialResult::Crashed:    return "CRASHED";
      case TrialResult::Hung:       return "HUNG";
    }
    return "?";
}

/** waitpid with a deadline; a child that outlives it is killed and
 *  classified Hung (invariant 2). */
TrialResult
reapWithDeadline(pid_t pid, std::uint64_t timeoutMs)
{
    const std::uint64_t pollUs = 2000;
    std::uint64_t waitedUs = 0;
    for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            if (WIFSIGNALED(status))
                return TrialResult::Crashed;
            switch (WEXITSTATUS(status)) {
              case kHandled:            return TrialResult::Handled;
              case kNotCovered:         return TrialResult::NotCovered;
              case kUndeclaredSite:     return TrialResult::Undeclared;
              case kInvariantViolation: return TrialResult::Invariant;
              default:                  return TrialResult::Crashed;
            }
        }
        if (waitedUs / 1000 >= timeoutMs) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
            return TrialResult::Hung;
        }
        ::usleep(pollUs);
        waitedUs += pollUs;
    }
}

std::string
trialDir(const Options &opt, unsigned index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/trial-%04u", index);
    const std::string d = opt.dir + buf;
    ensureDir(d);
    return d;
}

unsigned g_trialIndex = 0;

TrialResult
runTrial(const Options &opt, const std::string &family,
         const std::vector<Arm> &arms)
{
    const std::string dir = trialDir(opt, g_trialIndex++);
    // Children inherit the parent's stdio buffers and would flush
    // them again at exit, duplicating every buffered line.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::fprintf(stderr, "%s: fork failed\n", kProg);
        std::exit(2);
    }
    if (pid == 0)
        childTrial(family, dir, arms, opt.timeoutMs);
    const TrialResult res = reapWithDeadline(pid, opt.timeoutMs);
    std::string label;
    for (const Arm &a : arms) {
        if (!label.empty())
            label += " + ";
        label += a.site + '=' + a.action;
    }
    if (opt.verbose || res != TrialResult::Handled)
        std::printf("%-11s %-7s %s\n", trialResultName(res),
                    family.c_str(), label.c_str());
    return res;
}

void
tallyUp(Tally &t, TrialResult res, const std::vector<Arm> &arms)
{
    switch (res) {
      case TrialResult::Handled:
        ++t.handled;
        for (const Arm &a : arms)
            t.cover(a.site);
        break;
      case TrialResult::NotCovered: ++t.notCovered; break;
      case TrialResult::Undeclared: ++t.undeclared; break;
      case TrialResult::Invariant:  ++t.invariant; break;
      case TrialResult::Crashed:    ++t.crashed; break;
      case TrialResult::Hung:       ++t.hung; break;
    }
}

void
modeSweep(const Options &opt, Tally &tally)
{
    for (const std::string &site : fp::Registry::declaredSites()) {
        if (!opt.filter.empty() && !startsWith(site, opt.filter.c_str()))
            continue;
        const std::vector<Arm> arms = {{site, opt.action}};
        tallyUp(tally, runTrial(opt, familyOf(site), arms), arms);
    }
}

void
modePairs(const Options &opt, Tally &tally)
{
    // Sample pairs within one scenario family: two faults that can
    // genuinely interact inside one run.
    std::vector<std::vector<std::string>> families;
    for (const std::string &site : fp::Registry::declaredSites()) {
        const std::string fam = familyOf(site);
        bool placed = false;
        for (auto &f : families) {
            if (familyOf(f.front()) == fam) {
                f.push_back(site);
                placed = true;
            }
        }
        if (!placed)
            families.push_back({site});
    }
    Rng rng(opt.seed);
    for (std::uint64_t i = 0; i < opt.pairs; ++i) {
        const auto &fam =
            families[static_cast<std::size_t>(rng.next()) %
                     families.size()];
        if (fam.size() < 2)
            continue;
        const std::size_t a =
            static_cast<std::size_t>(rng.next()) % fam.size();
        std::size_t b = static_cast<std::size_t>(rng.next()) %
                        (fam.size() - 1);
        if (b >= a)
            ++b;
        const std::vector<Arm> arms = {{fam[a], opt.action},
                                       {fam[b], opt.action}};
        tallyUp(tally, runTrial(opt, familyOf(fam[a]), arms), arms);
    }
}

void
modeEnospc(const Options &opt, Tally &tally)
{
    // Disk turns full at byte K of the write stream and STAYS full
    // (the short-write splits exactly at K). Scan K across the body
    // and manifest streams until an offset past end-of-stream reports
    // not-covered. Invariant 4 must hold at every offset.
    for (const char *site : {"ckpt.body.write", "ckpt.manifest.write"}) {
        for (std::uint64_t k = 0;; k += opt.enospcStride) {
            const std::vector<Arm> arms = {
                {site, "short,after_bytes=" + std::to_string(k)}};
            const TrialResult res = runTrial(opt, "ckpt", arms);
            tallyUp(tally, res, arms);
            if (res == TrialResult::NotCovered)
                break; // past the total bytes this scenario writes
            if (res != TrialResult::Handled)
                break; // already recorded; no point scanning on
        }
    }
}

void
modeObsIdentity(const Options &opt, Tally &tally)
{
    // Invariant: observability is output-only. A run whose every obs
    // sink failpoint fires (persistently!) — while a live ObsServer
    // is being scraped — must train bitwise identically to a dark
    // run.
    const auto leg = [&](const std::string &dir, bool lit,
                         std::uint32_t &crcOut) -> bool {
        const std::string crcPath = dir + "/crc.txt";
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid == 0) {
            ThreadPool::instance().reinitAfterFork();
            fp::Registry::instance().reset();
            nn::guard::CrashHarnessConfig cfg;
            cfg.seed = 29;
            cfg.steps = 10;
            cfg.batchSize = 16;
            obs::ObsServer server;
            std::atomic<bool> stopScrape{false};
            std::thread scraper;
            if (lit) {
                fp::Registry::instance().setTrace(true);
                for (const std::string &s :
                     fp::Registry::declaredSites())
                    if (startsWith(s, "obs."))
                        armAll({{s, "fail"}});
                cfg.telemetryOut = dir + "/telemetry.jsonl";
                cfg.traceOut = dir + "/trace.json";
                cfg.metricsOut = dir + "/metrics.prom";
                cfg.metricsEvery = 2;
                obs::ObsServerConfig scfg; // ephemeral port
                if (server.start(scfg)) {
                    scraper = std::thread([&] {
                        while (!stopScrape.load()) {
                            int status = 0;
                            std::string body;
                            obs::httpGet(server.port(), "/metrics",
                                         status, body, 500);
                            ::usleep(2000);
                        }
                    });
                }
            }
            const auto r = nn::guard::runCrashHarness(cfg);
            stopScrape.store(true);
            if (scraper.joinable())
                scraper.join();
            server.stop();
            std::FILE *f = std::fopen(crcPath.c_str(), "w");
            if (f == nullptr)
                std::exit(kInvariantViolation);
            std::fprintf(f, "%u %llu\n", r.mastersCrc,
                         static_cast<unsigned long long>(r.stepsRun));
            std::fclose(f);
            std::exit(kHandled);
        }
        if (reapWithDeadline(pid, opt.timeoutMs) !=
            TrialResult::Handled)
            return false;
        std::FILE *f = std::fopen(crcPath.c_str(), "r");
        if (f == nullptr)
            return false;
        unsigned crc = 0;
        unsigned long long steps = 0;
        const bool ok = std::fscanf(f, "%u %llu", &crc, &steps) == 2;
        std::fclose(f);
        crcOut = crc;
        return ok && steps == 10;
    };

    std::uint32_t dark = 0, lit = 1;
    const bool okDark =
        leg(trialDir(opt, g_trialIndex++), false, dark);
    const bool okLit = leg(trialDir(opt, g_trialIndex++), true, lit);
    const bool identical = okDark && okLit && dark == lit;
    std::printf("obs-identity: dark=%08x lit=%08x -> %s\n", dark, lit,
                identical ? "identical" : "DIVERGED");
    if (identical) {
        ++tally.handled;
        for (const std::string &s : fp::Registry::declaredSites())
            if (startsWith(s, "obs."))
                tally.cover(s);
    } else {
        ++tally.invariant;
    }
}

void
modeSelftest(const Options &opt, Tally &tally)
{
    // Deliberately evaluate a site that is NOT in the declared table;
    // the sweep's coverage audit must catch it. If this trial comes
    // back "handled", the audit is broken.
    const std::string dir = trialDir(opt, g_trialIndex++);
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ThreadPool::instance().reinitAfterFork();
        fp::Registry::instance().reset();
        fp::Registry::instance().setTrace(true);
        // A hypothetical unregistered failure path in some new code:
        (void)CQ_FAILPOINT("selftest.unregistered_path");
        for (const std::string &s :
             fp::Registry::instance().hitSites())
            if (!fp::Registry::isDeclared(s))
                std::exit(kUndeclaredSite);
        std::exit(kHandled);
    }
    const TrialResult res = reapWithDeadline(pid, opt.timeoutMs);
    const bool caught = res == TrialResult::Undeclared;
    std::printf("selftest: unregistered failure path %s\n",
                caught ? "caught by the audit" : "NOT CAUGHT");
    if (caught)
        ++tally.handled;
    else
        ++tally.invariant;
}

void
printUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: cq_faultsweep [--mode "
        "all|sweep|pairs|enospc|obs-identity|selftest|list]\n"
        "                     [--filter PREFIX] [--action ACT]\n"
        "                     [--pairs N] [--enospc-stride N]\n"
        "                     [--timeout-ms T] [--seed S]\n"
        "                     [--min-covered N] [--dir D] "
        "[--verbose]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--mode")
            opt.mode = next();
        else if (arg == "--filter")
            opt.filter = next();
        else if (arg == "--action")
            opt.action = next();
        else if (arg == "--dir")
            opt.dir = next();
        else if (arg == "--pairs")
            opt.pairs = args::parseU64(kProg, arg, next(), 0, 10000);
        else if (arg == "--enospc-stride")
            opt.enospcStride =
                args::parseU64(kProg, arg, next(), 1, 1u << 30);
        else if (arg == "--timeout-ms")
            opt.timeoutMs =
                args::parseU64(kProg, arg, next(), 100, 3600000);
        else if (arg == "--seed")
            opt.seed = args::parseU64(kProg, arg, next(), 0,
                                      UINT64_MAX);
        else if (arg == "--min-covered")
            opt.minCovered =
                args::parseU64(kProg, arg, next(), 0, 10000);
        else if (arg == "--verbose")
            opt.verbose = true;
        else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", kProg,
                         arg.c_str());
            printUsage(stderr);
            return 2;
        }
    }

    if (opt.mode == "list") {
        for (const std::string &s : fp::Registry::declaredSites())
            std::printf("%-24s (%s)\n", s.c_str(),
                        familyOf(s).c_str());
        std::printf("%zu declared sites\n",
                    fp::Registry::declaredSites().size());
        return 0;
    }

    if (opt.dir.empty()) {
        char tmpl[] = "/tmp/cq_faultsweep.XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        if (d == nullptr) {
            std::fprintf(stderr, "%s: mkdtemp failed\n", kProg);
            return 2;
        }
        opt.dir = d;
    } else {
        ensureDir(opt.dir);
    }

    Tally tally;
    const bool all = opt.mode == "all";
    if (all || opt.mode == "sweep")
        modeSweep(opt, tally);
    if (all || opt.mode == "pairs")
        modePairs(opt, tally);
    if (all || opt.mode == "enospc")
        modeEnospc(opt, tally);
    if (all || opt.mode == "obs-identity")
        modeObsIdentity(opt, tally);
    if (all || opt.mode == "selftest")
        modeSelftest(opt, tally);
    if (!all && opt.mode != "sweep" && opt.mode != "pairs" &&
        opt.mode != "enospc" && opt.mode != "obs-identity" &&
        opt.mode != "selftest") {
        std::fprintf(stderr, "%s: unknown mode '%s'\n", kProg,
                     opt.mode.c_str());
        return 2;
    }

    std::printf("\nfaultsweep summary: %u handled, %u not-covered, "
                "%u undeclared, %u invariant, %u crashed, %u hung; "
                "%zu/%zu declared sites covered\n",
                tally.handled, tally.notCovered, tally.undeclared,
                tally.invariant, tally.crashed, tally.hung,
                tally.coveredSites.size(),
                fp::Registry::declaredSites().size());
    if (!tally.clean())
        return 1;
    if (tally.coveredSites.size() < opt.minCovered) {
        std::fprintf(stderr,
                     "%s: only %zu sites covered (< --min-covered "
                     "%llu)\n",
                     kProg, tally.coveredSites.size(),
                     static_cast<unsigned long long>(opt.minCovered));
        return 1;
    }
    return 0;
}
