/**
 * @file
 * cq_crashtest: kill–restart verification driver.
 *
 * Proves the checkpoint store's crash-consistency contract end to end:
 * a training run SIGKILLed at an arbitrary point — including from
 * inside a checkpoint write — and restarted with elastic resume must
 * finish with master weights bitwise identical to an uninterrupted
 * run.
 *
 * The driver forks three kinds of children (a kill must never take
 * the driver down, and SIGKILL cannot be caught):
 *
 *   reference:  train seed-deterministically to --steps, dump masters
 *   kill:       same run, self-SIGKILL at a planned step boundary or
 *               at a planned cumulative byte offset of checkpoint I/O
 *   resume:     restart in the killed run's directory with
 *               --resume semantics, train to --steps, dump masters
 *
 * Kill points come from sim::planKillPoints(): seeded, >= 1 of them
 * mid-write. The driver exits 0 iff every resumed dump matches the
 * reference dump byte for byte.
 *
 * Usage:
 *   cq_crashtest [--trials N] [--steps N] [--seed S] [--ckpt-every N]
 *                [--ckpt-keep K] [--mid-write-frac F]
 *                [--max-write-bytes B] [--slow-write-us U]
 *                [--dir PATH] [--sync] [--verbose]
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/argparse.h"
#include "common/fileutil.h"
#include "common/threadpool.h"
#include "nn/guard/crash_harness.h"
#include "sim/faults/kill_schedule.h"

using namespace cq;

namespace {

constexpr const char *kProg = "cq_crashtest";

void
usage()
{
    std::fprintf(
        stderr,
        "usage: cq_crashtest [--trials N] [--steps N] [--seed S]\n"
        "                    [--ckpt-every N] [--ckpt-keep K]\n"
        "                    [--mid-write-frac F] "
        "[--max-write-bytes B]\n"
        "                    [--slow-write-us U] [--dir PATH] "
        "[--sync]\n"
        "                    [--verbose]\n");
    std::exit(2);
}

/** Strict parses shared with the other tools (common/argparse.h). */
std::uint64_t
parseU64(const std::string &flag, const std::string &text,
         std::uint64_t lo, std::uint64_t hi)
{
    return args::parseU64(kProg, flag, text, lo, hi);
}

double
parseFrac(const std::string &flag, const std::string &text)
{
    return args::parseFrac(kProg, flag, text);
}

/**
 * Run one harness leg in a forked child. Returns the child's wait
 * status. The child reinitializes the thread pool (workers do not
 * survive fork), runs the leg, appends its result to resultPath, and
 * leaves via _exit so no parent-owned atexit/static state runs twice.
 */
int
runLegInChild(const nn::guard::CrashHarnessConfig &cfg,
              const std::string &resultPath)
{
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("cq_crashtest: fork");
        std::exit(1);
    }
    if (pid == 0) {
        ThreadPool::instance().reinitAfterFork();
        const auto r = nn::guard::runCrashHarness(cfg);
        if (!resultPath.empty()) {
            std::FILE *f = std::fopen(resultPath.c_str(), "w");
            if (f == nullptr)
                ::_exit(4);
            std::fprintf(f,
                         "resumed %d gen %llu step %llu skipped %llu "
                         "stepsRun %llu crc %08x\n",
                         r.resumed ? 1 : 0,
                         static_cast<unsigned long long>(
                             r.resumedGeneration),
                         static_cast<unsigned long long>(
                             r.resumedStep),
                         static_cast<unsigned long long>(
                             r.skippedCorrupt),
                         static_cast<unsigned long long>(r.stepsRun),
                         r.mastersCrc);
            std::fclose(f);
        }
        ::_exit(0);
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            std::perror("cq_crashtest: waitpid");
            std::exit(1);
        }
    }
    return status;
}

/** Parsed result.txt of a surviving leg. */
struct LegResult
{
    bool valid = false;
    int resumed = 0;
    unsigned long long gen = 0, step = 0, skipped = 0, stepsRun = 0;
    unsigned crc = 0;
};

LegResult
readLegResult(const std::string &path)
{
    LegResult r;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return r;
    r.valid = std::fscanf(f,
                          "resumed %d gen %llu step %llu skipped "
                          "%llu stepsRun %llu crc %x",
                          &r.resumed, &r.gen, &r.step, &r.skipped,
                          &r.stepsRun, &r.crc) == 6;
    std::fclose(f);
    return r;
}

bool
readWholeFile(const std::string &path, std::vector<char> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t trials = 20, steps = 60, seed = 1;
    std::uint64_t ckptEvery = 5, ckptKeep = 3;
    std::uint64_t maxWriteBytes = 4096, slowWriteUs = 0;
    double midWriteFrac = 0.25;
    std::string baseDir;
    bool sync = false, verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--trials")
            trials = parseU64(arg, next(), 1, 10000);
        else if (arg == "--steps")
            steps = parseU64(arg, next(), 2, 1000000);
        else if (arg == "--seed")
            seed = parseU64(arg, next(), 0, UINT64_MAX);
        else if (arg == "--ckpt-every")
            ckptEvery = parseU64(arg, next(), 1, 1000000);
        else if (arg == "--ckpt-keep")
            ckptKeep = parseU64(arg, next(), 1, 1000);
        else if (arg == "--mid-write-frac")
            midWriteFrac = parseFrac(arg, next());
        else if (arg == "--max-write-bytes")
            maxWriteBytes = parseU64(arg, next(), 1, 1ull << 30);
        else if (arg == "--slow-write-us")
            slowWriteUs = parseU64(arg, next(), 0, 1000000);
        else if (arg == "--dir")
            baseDir = next();
        else if (arg == "--sync")
            sync = true;
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--help")
            usage();
        else {
            std::fprintf(stderr,
                         "cq_crashtest: unknown flag '%s' (see "
                         "--help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }

    if (baseDir.empty()) {
        char tmpl[] = "/tmp/cq-crashtest-XXXXXX";
        if (::mkdtemp(tmpl) == nullptr) {
            std::perror("cq_crashtest: mkdtemp");
            return 1;
        }
        baseDir = tmpl;
    } else if (!ensureDir(baseDir)) {
        std::fprintf(stderr, "cq_crashtest: cannot create '%s'\n",
                     baseDir.c_str());
        return 1;
    }

    nn::guard::CrashHarnessConfig base;
    base.seed = seed + 100; // model/data seed, distinct from schedule
    base.steps = steps;
    base.ckptEvery = ckptEvery;
    base.ckptKeep = static_cast<std::size_t>(ckptKeep);
    base.asyncCheckpoint = !sync;
    base.slowWriteMicros = static_cast<unsigned>(slowWriteUs);

    // Reference leg: the uninterrupted run every trial compares to.
    const std::string refMasters = baseDir + "/ref-masters.bin";
    {
        nn::guard::CrashHarnessConfig ref = base;
        ref.dir = baseDir + "/ref";
        ref.mastersOut = refMasters;
        const int status =
            runLegInChild(ref, baseDir + "/ref-result.txt");
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "cq_crashtest: reference leg failed "
                         "(status %d)\n",
                         status);
            return 1;
        }
    }
    std::vector<char> refBytes;
    if (!readWholeFile(refMasters, refBytes) || refBytes.empty()) {
        std::fprintf(stderr,
                     "cq_crashtest: reference masters dump missing\n");
        return 1;
    }

    sim::KillScheduleConfig scfg;
    scfg.seed = seed;
    scfg.kills = static_cast<std::size_t>(trials);
    scfg.maxStep = steps;
    scfg.midWriteFraction = midWriteFrac;
    scfg.maxWriteBytes = maxWriteBytes;
    const auto plan = sim::planKillPoints(scfg);

    std::printf("cq_crashtest: %llu trials, %llu steps, ckpt every "
                "%llu keep %llu, %s commits, CQ_THREADS=%s\n",
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(ckptEvery),
                static_cast<unsigned long long>(ckptKeep),
                sync ? "sync" : "async",
                std::getenv("CQ_THREADS") ? std::getenv("CQ_THREADS")
                                          : "(default)");
    std::printf("%-6s %-22s %-10s %-12s %-8s %s\n", "trial", "kill",
                "killed", "resumed-gen", "steps", "verdict");

    std::size_t failures = 0;
    for (std::size_t t = 0; t < plan.size(); ++t) {
        const auto &kp = plan[t];
        char trialName[32];
        std::snprintf(trialName, sizeof trialName, "trial-%03zu", t);
        const std::string dir = baseDir + "/" + trialName;

        nn::guard::CrashHarnessConfig kill = base;
        kill.dir = dir;
        if (kp.midWrite)
            kill.killAtWriteBytes = kp.writeBytes + 1;
        else
            kill.killAtStep = kp.step;
        const int killStatus = runLegInChild(kill, "");
        const bool killed = WIFSIGNALED(killStatus) &&
                            WTERMSIG(killStatus) == SIGKILL;

        nn::guard::CrashHarnessConfig res = base;
        res.dir = dir;
        res.resume = true;
        res.mastersOut = dir + "/masters.bin";
        const std::string resultPath = dir + "/result.txt";
        const int resStatus = runLegInChild(res, resultPath);
        const bool resOk =
            WIFEXITED(resStatus) && WEXITSTATUS(resStatus) == 0;

        std::vector<char> gotBytes;
        const bool match =
            resOk && readWholeFile(res.mastersOut, gotBytes) &&
            gotBytes.size() == refBytes.size() &&
            std::memcmp(gotBytes.data(), refBytes.data(),
                        refBytes.size()) == 0;
        const LegResult lr = readLegResult(resultPath);

        char killDesc[48];
        if (kp.midWrite)
            std::snprintf(killDesc, sizeof killDesc,
                          "mid-write @%llu B",
                          static_cast<unsigned long long>(
                              kp.writeBytes + 1));
        else
            std::snprintf(killDesc, sizeof killDesc, "step %llu",
                          static_cast<unsigned long long>(kp.step));
        char genDesc[24];
        if (lr.valid && lr.resumed)
            std::snprintf(genDesc, sizeof genDesc, "%llu", lr.gen);
        else
            std::snprintf(genDesc, sizeof genDesc, "cold");
        std::printf("%-6zu %-22s %-10s %-12s %-8llu %s\n", t,
                    killDesc, killed ? "SIGKILL" : "no",
                    genDesc, lr.valid ? lr.stepsRun : 0ull,
                    match ? "bitwise-identical" : "MISMATCH");
        if (verbose && lr.valid)
            std::printf(
                "       resumed-step %llu skipped-corrupt %llu crc "
                "%08x\n",
                lr.step, lr.skipped, lr.crc);
        if (!match)
            ++failures;
    }

    if (failures == 0) {
        std::printf("cq_crashtest: all %zu resumed runs bitwise "
                    "identical to the uninterrupted run\n",
                    plan.size());
        return 0;
    }
    std::fprintf(stderr, "cq_crashtest: %zu/%zu trials FAILED\n",
                 failures, plan.size());
    return 1;
}
