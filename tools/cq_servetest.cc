/**
 * @file
 * Chaos harness for the multi-tenant job server (src/serve/).
 *
 * Each trial boots a small Scheduler, fires a randomized burst of
 * jobs at it — worker crashes, transient failures, hung jobs under
 * tight deadlines, permanent failures, priority bursts from several
 * tenants, and (on some trials) a mid-flight drain — then verifies
 * the server's robustness contract:
 *
 *   1. **No lost jobs.** Every accepted job ends in exactly one
 *      terminal report; the report id set equals the accepted id set.
 *   2. **No hangs.** The trial completes within its watchdog budget
 *      (a stuck scheduler fails the run, it does not wedge CI).
 *   3. **Typed outcomes.** Completed reports carry no failure kind;
 *      Failed reports carry one; attempts never exceed the budget.
 *   4. **Isolation.** Completed jobs' result CRCs are bitwise
 *      identical to the same spec run standalone (no queue, no
 *      worker pool) — serving a job must not change its result.
 *
 * Every trial is a pure function of (--seed, trial index): a failure
 * reproduces with the printed seed. Exit 0 = all trials clean.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/argparse.h"
#include "common/fileutil.h"
#include "common/rng.h"
#include "serve/job_runner.h"
#include "serve/scheduler.h"

using namespace cq;
using namespace cq::serve;

namespace {

constexpr const char *kProg = "cq_servetest";

struct Options
{
    std::uint64_t trials = 20;
    std::uint64_t seed = 17;
    std::uint64_t jobs = 24;
    unsigned workers = 3;
    std::size_t queueCap = 8;
    /** Standalone-identity re-runs per trial (completed jobs). */
    std::uint64_t identityChecks = 3;
    std::uint64_t watchdogMs = 60000;
    std::string tmpDir;
    bool verbose = false;
    /** Replay exactly one trial index (-1 = run them all). Together
     *  with --seed this reproduces a single failed trial without
     *  re-running the whole sweep. */
    std::int64_t onlyTrial = -1;
};

int gFailures = 0;

#define CHECK(cond, ...)                                              \
    do {                                                              \
        if (!(cond)) {                                                \
            std::fprintf(stderr, "FAIL: " __VA_ARGS__);               \
            std::fprintf(stderr, "\n");                               \
            ++gFailures;                                              \
        }                                                             \
    } while (0)

/** One randomized spec. Chaos knobs are drawn so that most jobs can
 *  complete (the lost-job invariant is only interesting when jobs
 *  survive retries) with a deliberate tail of hopeless ones. */
JobSpec
randomSpec(Rng &rng, const Options &opt, std::uint64_t trial,
           std::uint64_t index)
{
    JobSpec spec;
    spec.id = "t" + std::to_string(trial) + "-j" +
              std::to_string(index);
    static const char *kTenants[] = {"acme", "blue", "crab"};
    spec.tenant = kTenants[rng.below(3)];
    spec.priority = static_cast<Priority>(rng.below(3));
    spec.seed = rng.next();
    spec.maxRetries = 1 + static_cast<std::uint32_t>(rng.below(3));

    const std::uint64_t kind = rng.below(10);
    if (kind < 2) {
        spec.kind = JobKind::Train;
        spec.steps = 6 + rng.below(10);
        if (rng.below(2) == 0)
            spec.ckptDir = opt.tmpDir + "/" + spec.id;
    } else if (kind < 6) {
        spec.kind = JobKind::Sweep;
        spec.steps = 4 + rng.below(24);
    } else {
        spec.kind = JobKind::Sim;
        spec.steps = 4 + rng.below(40);
    }

    // Chaos mix: ~40% of jobs get some injection.
    const std::uint64_t chaos = rng.below(10);
    if (chaos == 0) {
        spec.chaos.crashAttempts =
            1 + static_cast<std::uint32_t>(rng.below(2));
    } else if (chaos == 1 || chaos == 2) {
        spec.chaos.failAttempts =
            1 + static_cast<std::uint32_t>(rng.below(3));
    } else if (chaos == 3) {
        // Hung dependency under a deadline that cuts it short.
        spec.chaos.hangMs =
            40 + static_cast<std::uint32_t>(rng.below(40));
        spec.deadlineMs =
            5 + static_cast<std::uint32_t>(rng.below(20));
    } else if (chaos == 4) {
        spec.chaos.permanentFailure = true;
    }
    return spec;
}

/** True when, absent scheduling effects, this spec must complete. */
bool
mustComplete(const JobSpec &spec)
{
    if (spec.chaos.permanentFailure || spec.deadlineMs > 0)
        return false;
    const std::uint32_t burned =
        spec.chaos.failAttempts + spec.chaos.crashAttempts;
    return burned <= spec.maxRetries;
}

void
runTrial(const Options &opt, std::uint64_t trial)
{
    Rng rng(opt.seed * 1000003 + trial);

    SchedulerConfig cfg;
    cfg.workers = opt.workers;
    cfg.queue.capacity = opt.queueCap;
    cfg.backoffBaseMs = 5;
    cfg.backoffCapMs = 50;
    cfg.backoffScale = 0.2;
    cfg.jitterSeed = opt.seed;
    Scheduler sched(cfg);

    std::vector<JobSpec> accepted;
    std::set<std::string> acceptedIds;
    std::set<std::string> shedAtAdmission;
    std::uint64_t rejected = 0;
    for (std::uint64_t i = 0; i < opt.jobs; ++i) {
        JobSpec spec = randomSpec(rng, opt, trial, i);
        const SubmitOutcome out = sched.submit(spec);
        if (admissionAccepted(out.verdict)) {
            accepted.push_back(spec);
            acceptedIds.insert(spec.id);
            if (!out.shedJobId.empty())
                shedAtAdmission.insert(out.shedJobId);
        } else {
            ++rejected;
            CHECK(out.verdict == AdmissionVerdict::RejectedQueueFull,
                  "trial %" PRIu64
                  ": unexpected rejection %s for %s (%s)",
                  trial, admissionVerdictName(out.verdict),
                  spec.id.c_str(), out.reason.c_str());
        }
        // Bursty arrivals: occasionally let the queue breathe so
        // trials exercise both full-queue and draining-queue paths.
        if (rng.below(4) == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(rng.below(3)));
    }

    const bool drainTrial = trial % 5 == 4;
    if (drainTrial) {
        // Race the drain against the burst so some jobs are still
        // queued (cancelled) and some running (checkpoint + stop).
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.below(8)));
        sched.requestDrain();
        const SubmitOutcome out = sched.submit(
            randomSpec(rng, opt, trial, opt.jobs));
        CHECK(out.verdict == AdmissionVerdict::RejectedShutdown,
              "trial %" PRIu64
              ": post-drain submit not rejected-shutdown (%s)",
              trial, admissionVerdictName(out.verdict));
    }

    // 2: no hangs.
    const bool idle =
        sched.waitIdle(static_cast<std::uint32_t>(opt.watchdogMs));
    CHECK(idle,
          "trial %" PRIu64 ": scheduler not idle after %" PRIu64
          " ms (hang)",
          trial, opt.watchdogMs);
    if (!idle)
        return; // the destructor's drain is the best we can do

    // 1: no lost jobs, no duplicate reports.
    const std::vector<JobReport> reports = sched.reports();
    std::set<std::string> reportIds;
    for (const JobReport &r : reports)
        CHECK(reportIds.insert(r.id).second,
              "trial %" PRIu64 ": duplicate report for %s", trial,
              r.id.c_str());
    CHECK(reportIds == acceptedIds,
          "trial %" PRIu64
          ": report ids != accepted ids (%zu vs %zu)",
          trial, reportIds.size(), acceptedIds.size());

    // 3: typed outcomes.
    for (const JobReport &r : reports) {
        CHECK(r.state != JobState::Pending,
              "trial %" PRIu64 ": %s reported Pending", trial,
              r.id.c_str());
        if (r.state == JobState::Completed)
            CHECK(r.failure == FailureKind::None,
                  "trial %" PRIu64 ": completed %s has failure %s",
                  trial, r.id.c_str(), failureKindName(r.failure));
        if (r.state == JobState::Failed)
            CHECK(r.failure != FailureKind::None,
                  "trial %" PRIu64 ": failed %s lacks a failure kind",
                  trial, r.id.c_str());
    }
    std::uint64_t completed = 0;
    for (const JobSpec &spec : accepted) {
        const auto it = std::find_if(
            reports.begin(), reports.end(),
            [&](const JobReport &r) { return r.id == spec.id; });
        if (it == reports.end())
            continue; // already flagged above
        const JobReport &r = *it;
        CHECK(r.attempts <= 1 + spec.maxRetries,
              "trial %" PRIu64 ": %s used %u attempts (budget %u)",
              trial, spec.id.c_str(), r.attempts,
              1 + spec.maxRetries);
        if (r.state == JobState::Completed)
            ++completed;
        if (!drainTrial && mustComplete(spec) &&
            shedAtAdmission.count(spec.id) == 0)
            CHECK(r.state == JobState::Completed,
                  "trial %" PRIu64
                  ": %s should have completed, got %s (%s)",
                  trial, spec.id.c_str(), jobStateName(r.state),
                  r.detail.c_str());
    }

    // 4: isolation — serve result == standalone result, bitwise.
    std::uint64_t checked = 0;
    for (const JobReport &r : reports) {
        if (checked >= opt.identityChecks)
            break;
        if (r.state != JobState::Completed)
            continue;
        const auto it = std::find_if(
            accepted.begin(), accepted.end(),
            [&](const JobSpec &s) { return s.id == r.id; });
        if (it == accepted.end() || !it->ckptDir.empty())
            continue; // fresh dirs only: reuse would resume-pollute
        JobSpec solo = *it;
        const JobReport ref = runJobStandalone(solo);
        CHECK(ref.state == JobState::Completed,
              "trial %" PRIu64 ": standalone %s not completed (%s)",
              trial, solo.id.c_str(), jobStateName(ref.state));
        CHECK(ref.resultCrc == r.resultCrc,
              "trial %" PRIu64
              ": %s crc differs serve=%08x standalone=%08x",
              trial, solo.id.c_str(), r.resultCrc, ref.resultCrc);
        CHECK(ref.stepsRun == r.stepsRun,
              "trial %" PRIu64
              ": %s steps differ serve=%" PRIu64
              " standalone=%" PRIu64,
              trial, solo.id.c_str(), r.stepsRun, ref.stepsRun);
        ++checked;
    }

    const SchedulerStats s = sched.stats();
    if (opt.verbose || gFailures > 0)
        std::printf("trial %2" PRIu64 ": accepted %" PRIu64
                    " rejected %" PRIu64 " completed %" PRIu64
                    " failed %" PRIu64 " cancelled %" PRIu64
                    " timed-out %" PRIu64 " shed %" PRIu64
                    " retries %" PRIu64 " crashes %" PRIu64
                    " degraded %" PRIu64 "%s\n",
                    trial, s.accepted,
                    s.rejectedFull + s.rejectedShutdown +
                        s.rejectedInvalid,
                    s.completed, s.failed, s.cancelled, s.timedOut,
                    s.shed, s.retries, s.workerCrashes, s.degraded,
                    drainTrial ? " (drained)" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            return args::nextValue(kProg, argc, argv, i);
        };
        if (arg == "--trials")
            opt.trials =
                args::parseU64(kProg, arg, next(), 1, 100000);
        else if (arg == "--seed")
            opt.seed =
                args::parseU64(kProg, arg, next(), 0, UINT64_MAX);
        else if (arg == "--jobs")
            opt.jobs = args::parseU64(kProg, arg, next(), 1, 100000);
        else if (arg == "--workers")
            opt.workers = static_cast<unsigned>(
                args::parseU64(kProg, arg, next(), 1, 256));
        else if (arg == "--queue-cap")
            opt.queueCap = static_cast<std::size_t>(
                args::parseU64(kProg, arg, next(), 1, 1u << 20));
        else if (arg == "--identity-checks")
            opt.identityChecks =
                args::parseU64(kProg, arg, next(), 0, 1000);
        else if (arg == "--watchdog-ms")
            opt.watchdogMs =
                args::parseU64(kProg, arg, next(), 1000, 3600000);
        else if (arg == "--tmp")
            opt.tmpDir = next();
        else if (arg == "--trial")
            opt.onlyTrial = static_cast<std::int64_t>(
                args::parseU64(kProg, arg, next(), 0, 100000));
        else if (arg == "--verbose" || arg == "-v")
            opt.verbose = true;
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: cq_servetest [--trials N] [--seed S] "
                "[--jobs N]\n"
                "                    [--workers N] [--queue-cap N] "
                "[--identity-checks N]\n"
                "                    [--watchdog-ms MS] [--tmp DIR] "
                "[--verbose]\n"
                "                    [--trial T]   (replay one "
                "trial index)\n");
            return 0;
        } else {
            std::fprintf(stderr,
                         "cq_servetest: unknown flag '%s' (see "
                         "--help)\n",
                         arg.c_str());
            return 2;
        }
    }
    if (opt.tmpDir.empty())
        opt.tmpDir = "/tmp/cq_servetest." +
                     std::to_string(static_cast<long>(::getpid()));
    if (!ensureDir(opt.tmpDir)) {
        std::fprintf(stderr, "cq_servetest: cannot create %s\n",
                     opt.tmpDir.c_str());
        return 2;
    }

    std::uint64_t ranTrials = 0;
    for (std::uint64_t t = 0; t < opt.trials; ++t) {
        if (opt.onlyTrial >= 0 &&
            t != static_cast<std::uint64_t>(opt.onlyTrial))
            continue;
        const int before = gFailures;
        runTrial(opt, t);
        ++ranTrials;
        if (gFailures > before)
            // Every trial is a pure function of (seed, trial): print
            // enough to replay exactly this one, alone.
            std::fprintf(stderr,
                         "REPLAY: trial %" PRIu64
                         " failed (trial rng seed %" PRIu64
                         "); reproduce with: cq_servetest --seed "
                         "%" PRIu64 " --trial %" PRIu64
                         " --jobs %" PRIu64
                         " --workers %u --queue-cap %zu\n",
                         t, opt.seed * 1000003 + t, opt.seed, t,
                         opt.jobs, opt.workers, opt.queueCap);
    }

    if (gFailures == 0) {
        std::printf("cq_servetest: %" PRIu64
                    " trials clean (no lost jobs, no hangs, "
                    "identity holds)\n",
                    ranTrials);
        return 0;
    }
    std::fprintf(stderr,
                 "cq_servetest: %d failures over %" PRIu64
                 " trials (seed %" PRIu64 ")\n",
                 gFailures, ranTrials, opt.seed);
    return 1;
}
